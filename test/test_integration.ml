(* End-to-end integration tests: the paper's §2.4 scenario played out in
   full (three transactions, two documents, two sites), replica convergence
   under a concurrent XMark workload, and a serializability check against
   serial executions. *)

module Sim = Dtx_sim.Sim
module Net = Dtx_net.Net
module Cluster = Dtx.Cluster
module Site = Dtx.Site
module Txn = Dtx_txn.Txn
module Op = Dtx_update.Op
module Exec = Dtx_update.Exec
module P = Dtx_xpath.Parser
module Eval = Dtx_xpath.Eval
module Protocol = Dtx_protocol.Protocol
module Allocation = Dtx_frag.Allocation
module Doc = Dtx_xml.Doc
module Printer = Dtx_xml.Printer
module Xml_parser = Dtx_xml.Parser
module Generator = Dtx_xmark.Generator
module Queries = Dtx_xmark.Queries
module Fragment = Dtx_frag.Fragment
module Rng = Dtx_util.Rng

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let replica cluster ~site ~doc =
  let s = (Cluster.sites cluster).(site) in
  match Protocol.doc s.Site.protocol doc with
  | Some d -> d
  | None -> Alcotest.failf "site %d has no %s" site doc

(* ------------------------------------------------------------------ *)
(* The full §2.4 scenario.                                             *)
(* ------------------------------------------------------------------ *)

(* Documents exactly as described: d1 = people with person[id, name]
   children; d2 = products with product[id, description, price] children.
   Site s1 holds d1; site s2 holds d1 AND d2 (the paper's Fig. 4). *)
let scenario_cluster () =
  let sim = Sim.create () in
  let net = Net.of_config ~sim Net.Config.lan in
  let d1 =
    Xml_parser.parse ~name:"d1"
      "<people><person><id>4</id><name>Ana</name></person></people>"
  in
  let d2 =
    Xml_parser.parse ~name:"d2"
      "<products><product><id>14</id><description>Pen</description><price>1.20</price></product></products>"
  in
  let placements =
    [ { Allocation.doc = d1; sites = [ 0; 1 ] };
      { Allocation.doc = d2; sites = [ 1 ] } ]
  in
  let config =
    { (Cluster.default_config ()) with deadlock_period_ms = 5.0 }
  in
  let cluster = Cluster.create ~sim ~net ~n_sites:2 config ~placements in
  Cluster.shutdown_when_idle cluster;
  (sim, cluster)

let test_scenario_2_4 () =
  let sim, cluster = scenario_cluster () in
  let outcome = Hashtbl.create 4 in
  let finish name txn = Hashtbl.replace outcome name txn.Txn.status in
  (* t1 (client c1 at s1): query client 4, insert product Mouse. *)
  ignore
    (Cluster.submit cluster ~client:1 ~coordinator:0
       ~ops:
         [ ("d1", Op.Query (P.parse "/people/person[id = \"4\"]"));
           ( "d2",
             Op.Insert
               { target = P.parse "/products";
                 pos = Op.Into;
                 fragment =
                   "<product><id>13</id><description>Mouse</description><price>10.30</price></product>" } ) ]
       ~on_finish:(finish "t1"));
  (* t2 (client c2 at s2): query all products, insert person Patricia. *)
  ignore
    (Cluster.submit cluster ~client:2 ~coordinator:1
       ~ops:
         [ ("d2", Op.Query (P.parse "/products/product"));
           ( "d1",
             Op.Insert
               { target = P.parse "/people";
                 pos = Op.Into;
                 fragment = "<person><id>22</id><name>Patricia</name></person>" } ) ]
       ~on_finish:(finish "t2"));
  Sim.run sim;
  (* "By the rules of the protocol, the most recent transaction must be
     aborted; so transaction t2 is aborted … t1 has no further operations;
     it starts the commitment process." *)
  checkb "t1 committed" true (Hashtbl.find_opt outcome "t1" = Some Txn.Committed);
  checkb "t2 aborted" true (Hashtbl.find_opt outcome "t2" = Some Txn.Aborted);
  checkb "deadlock recorded" true
    ((Cluster.stats cluster).Cluster.deadlock_aborts = 1);
  (* "the client discards transaction t2 and decides to execute t3": query
     product 14, insert product Keyboard. *)
  let t3 = ref None in
  ignore
    (Cluster.submit cluster ~client:2 ~coordinator:1
       ~ops:
         [ ("d2", Op.Query (P.parse "/products/product[id = \"14\"]"));
           ( "d2",
             Op.Insert
               { target = P.parse "/products";
                 pos = Op.Into;
                 fragment =
                   "<product><id>32</id><description>Keyboard</description><price>9.90</price></product>" } ) ]
       ~on_finish:(fun txn -> t3 := Some txn.Txn.status));
  Sim.run sim;
  checkb "t3 committed" true (!t3 = Some Txn.Committed);
  (* Final state: Mouse and Keyboard present, Patricia absent, replicas of
     d1 identical on both sites. *)
  let d2r = replica cluster ~site:1 ~doc:"d2" in
  check "three products" 3 (List.length (Eval.select d2r (P.parse "/products/product")));
  check "Mouse" 1 (List.length (Eval.select d2r (P.parse "//product[id = \"13\"]")));
  check "Keyboard" 1 (List.length (Eval.select d2r (P.parse "//product[id = \"32\"]")));
  check "no Patricia" 0
    (List.length
       (Eval.select (replica cluster ~site:0 ~doc:"d1") (P.parse "//person[id = \"22\"]")));
  checkb "d1 replicas converged" true
    (Doc.equal_structure
       (replica cluster ~site:0 ~doc:"d1")
       (replica cluster ~site:1 ~doc:"d1"))

(* ------------------------------------------------------------------ *)
(* Replica convergence + invariant checks under a concurrent workload. *)
(* ------------------------------------------------------------------ *)

let run_random_cluster ~protocol ~seed ~n_txns =
  let sim = Sim.create () in
  let net = Net.of_config ~sim Net.Config.lan in
  let base = Generator.generate ~name:"x" (Generator.params_of_nodes 800) in
  let frags = Fragment.fragment base ~parts:3 in
  let placements =
    Allocation.allocate ~n_sites:3 (Allocation.Partial { copies = 2 }) frags
  in
  let config =
    { (Cluster.default_config ~protocol ()) with deadlock_period_ms = 10.0 }
  in
  let cluster = Cluster.create ~sim ~net ~n_sites:3 config ~placements in
  ignore (Cluster.enable_history cluster);
  Cluster.shutdown_when_idle cluster;
  let rng = Rng.create seed in
  let counter = ref 0 in
  let fresh () = incr counter; !counter in
  let frag_arr = Array.of_list frags in
  for i = 0 to n_txns - 1 do
    let ops =
      List.init 3 (fun _ ->
          let doc = Rng.pick rng frag_arr in
          let op =
            if Rng.pct rng 40 then Queries.gen_update rng ~fresh doc
            else Queries.gen_query rng doc
          in
          (doc.Doc.name, op))
    in
    ignore
      (Cluster.submit cluster ~client:i ~coordinator:(i mod 3) ~ops
         ~on_finish:(fun _ -> ()))
  done;
  Sim.run sim;
  (cluster, List.map (fun (d : Doc.t) -> d.Doc.name) frags)

let test_replicas_converge () =
  List.iter
    (fun protocol ->
      let cluster, doc_names = run_random_cluster ~protocol ~seed:3 ~n_txns:30 in
      let catalog = Cluster.catalog cluster in
      List.iter
        (fun name ->
          match Allocation.sites_of catalog name with
          | first :: rest ->
            let reference = replica cluster ~site:first ~doc:name in
            checkb (name ^ " reference valid") true (Doc.validate reference = Ok ());
            List.iter
              (fun site ->
                checkb
                  (Printf.sprintf "%s: site %d == site %d (%s)" name site first
                     (Protocol.kind_to_string protocol))
                  true
                  (Doc.equal_structure reference (replica cluster ~site ~doc:name)))
              rest
          | [] -> Alcotest.fail "no sites")
        doc_names;
      (* The committed transactions' conflict graph must be acyclic. *)
      (match Cluster.check_serializable cluster with
       | Ok () -> ()
       | Error e ->
         Alcotest.failf "%s: %s" (Protocol.kind_to_string protocol) e);
      (* Strict 2PL: when everything drained, no lock survives anywhere. *)
      Array.iter
        (fun (s : Site.t) ->
          check "no residual locks" 0 (Dtx_locks.Table.lock_count s.Site.table);
          check "wfg empty" 0 (Dtx_locks.Wfg.size s.Site.wfg))
        (Cluster.sites cluster);
      check "all transactions done" 0 (Cluster.active_txns cluster))
    [ Protocol.xdgl; Protocol.node2pl; Protocol.doc2pl ]

(* ------------------------------------------------------------------ *)
(* Serializability: the concurrent outcome must equal SOME serial order *)
(* of the committed transactions.                                       *)
(* ------------------------------------------------------------------ *)

let test_serializable_small () =
  (* Three single-doc update transactions racing on one document replicated
     at two sites. Afterwards the replica state must equal applying the
     committed transactions in SOME order serially. *)
  let doc_text = "<r><box><n>0</n></box><bin/></r>" in
  let mk_cluster () =
    let sim = Sim.create () in
    let net = Net.of_config ~sim Net.Config.lan in
    let d = Xml_parser.parse ~name:"d" doc_text in
    let placements = [ { Allocation.doc = d; sites = [ 0; 1 ] } ] in
    let config = { (Cluster.default_config ()) with deadlock_period_ms = 5.0 } in
    let cluster = Cluster.create ~sim ~net ~n_sites:2 config ~placements in
    Cluster.shutdown_when_idle cluster;
    (sim, cluster)
  in
  let txn_ops =
    [ ("a", [ ("d", Op.Insert { target = P.parse "/r/box"; pos = Op.Into; fragment = "<a/>" }) ]);
      ("b", [ ("d", Op.Change { target = P.parse "/r/box/n"; new_text = "B" }) ]);
      ("c", [ ("d", Op.Insert { target = P.parse "/r/bin"; pos = Op.Into; fragment = "<c/>" }) ]) ]
  in
  let sim, cluster = mk_cluster () in
  let committed = ref [] in
  List.iteri
    (fun i (name, ops) ->
      ignore
        (Cluster.submit cluster ~client:i ~coordinator:(i mod 2) ~ops
           ~on_finish:(fun txn ->
             if txn.Txn.status = Txn.Committed then committed := name :: !committed)))
    txn_ops;
  Sim.run sim;
  let final = Printer.to_string ~indent:false ~decl:false (replica cluster ~site:0 ~doc:"d") in
  (* Enumerate serial executions of the committed subset. *)
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x ->
          List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
        l
  in
  let serial_state order =
    let d = Xml_parser.parse ~name:"d" doc_text in
    List.iter
      (fun name ->
        let ops = List.assoc name txn_ops in
        List.iter
          (fun (_, op) ->
            match Exec.apply d op with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "serial apply: %s" (Exec.error_to_string e))
          ops)
      order;
    Printer.to_string ~indent:false ~decl:false d
  in
  let serial_states = List.map serial_state (permutations !committed) in
  checkb "equivalent to a serial execution" true (List.mem final serial_states);
  checkb "both replicas agree" true
    (Doc.equal_structure (replica cluster ~site:0 ~doc:"d")
       (replica cluster ~site:1 ~doc:"d"))

(* Property-style: several seeds, committed read-write transactions on a
   single counter-like document; check the final state is one of the n!
   serial outcomes (n kept tiny). *)
let test_serializable_many_seeds () =
  List.iter
    (fun seed ->
      let sim = Sim.create () in
      let net = Net.of_config ~sim Net.Config.lan in
      let d = Xml_parser.parse ~name:"d" "<r><slot><v>init</v></slot></r>" in
      let placements = [ { Allocation.doc = d; sites = [ 0; 1; 2 ] } ] in
      let config = { (Cluster.default_config ()) with deadlock_period_ms = 3.0 } in
      let cluster = Cluster.create ~sim ~net ~n_sites:3 config ~placements in
      Cluster.shutdown_when_idle cluster;
      let committed = ref [] in
      for i = 0 to 2 do
        let tag = Printf.sprintf "s%d_%d" seed i in
        ignore
          (Cluster.submit cluster ~client:i ~coordinator:i
             ~ops:
               [ ("d", Op.Query (P.parse "/r/slot/v"));
                 ("d", Op.Change { target = P.parse "/r/slot/v"; new_text = tag }) ]
             ~on_finish:(fun txn ->
               if txn.Txn.status = Txn.Committed then committed := tag :: !committed))
      done;
      Sim.run sim;
      let final =
        Dtx_xml.Node.text_content
          (List.hd (Eval.select (replica cluster ~site:0 ~doc:"d") (P.parse "/r/slot/v")))
      in
      (* The last committed writer must be the final value — with Strict 2PL
         any committed change survives until overwritten by a later one. *)
      checkb
        (Printf.sprintf "seed %d: final %s is a committed write" seed final)
        true
        (List.mem final !committed || (!committed = [] && final = "init"));
      checkb "replicas agree" true
        (Doc.equal_structure (replica cluster ~site:0 ~doc:"d")
           (replica cluster ~site:2 ~doc:"d")))
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Random cluster configurations: every combination of protocol,       *)
(* deadlock policy, commit protocol, site count and workload must       *)
(* satisfy the global invariants.                                       *)
(* ------------------------------------------------------------------ *)

let prop_random_configs_hold_invariants =
  let protocols =
    [| Protocol.xdgl; Protocol.node2pl; Protocol.doc2pl; Protocol.tadom;
       Protocol.xdgl_value |]
  in
  let policies = [| Dtx.Site.Detection; Dtx.Site.Wait_die; Dtx.Site.Wound_wait |] in
  let commits = [| Cluster.One_phase; Cluster.Two_phase |] in
  QCheck.Test.make ~name:"random cluster configs satisfy global invariants"
    ~count:25
    QCheck.(quad (int_bound 100) (int_range 1 4) small_nat small_nat)
    (fun (seed, n_sites, proto_i, policy_i) ->
      let protocol = protocols.(proto_i mod Array.length protocols) in
      let policy = policies.(policy_i mod Array.length policies) in
      let commit = commits.(seed mod 2) in
      let sim = Sim.create () in
      let net = Net.of_config ~sim Net.Config.lan in
      let base = Generator.generate ~name:"x" (Generator.params_of_nodes 500) in
      let frags = Fragment.fragment base ~parts:n_sites in
      let placements =
        Allocation.allocate ~n_sites (Allocation.Partial { copies = 1 }) frags
      in
      let config =
        { (Cluster.default_config ~protocol ()) with
          deadlock_period_ms = 8.0;
          deadlock_policy = policy;
          commit }
      in
      let cluster = Cluster.create ~sim ~net ~n_sites config ~placements in
      ignore (Cluster.enable_history cluster);
      Cluster.shutdown_when_idle cluster;
      let rng = Rng.create (seed + 31) in
      let counter = ref 0 in
      let fresh () = incr counter; !counter in
      let frag_arr = Array.of_list frags in
      let n_txns = 10 in
      let finished = ref 0 in
      for i = 0 to n_txns - 1 do
        let ops =
          List.init 2 (fun _ ->
              let doc = Rng.pick rng frag_arr in
              let op =
                if Rng.pct rng 50 then Queries.gen_update rng ~fresh doc
                else Queries.gen_query rng doc
              in
              (doc.Doc.name, op))
        in
        ignore
          (Cluster.submit cluster ~client:i ~coordinator:(i mod n_sites) ~ops
             ~on_finish:(fun _ -> incr finished))
      done;
      Sim.run sim;
      let s = Cluster.stats cluster in
      (* Invariants: every transaction terminates, accounting balances, no
         lock or wait-edge survives, histories are serializable, replicas
         agree. *)
      !finished = n_txns
      && s.Cluster.committed + s.Cluster.aborted + s.Cluster.failed = n_txns
      && Cluster.active_txns cluster = 0
      && Array.for_all
           (fun (site : Site.t) ->
             Dtx_locks.Table.lock_count site.Site.table = 0
             && Dtx_locks.Wfg.size site.Site.wfg = 0)
           (Cluster.sites cluster)
      && Cluster.check_serializable cluster = Ok ()
      && List.for_all
           (fun (d : Doc.t) ->
             match Allocation.sites_of (Cluster.catalog cluster) d.Doc.name with
             | first :: rest ->
               let reference = replica cluster ~site:first ~doc:d.Doc.name in
               Doc.validate reference = Ok ()
               && List.for_all
                    (fun site ->
                      Doc.equal_structure reference
                        (replica cluster ~site ~doc:d.Doc.name))
                    rest
             | [] -> false)
           frags)

let () =
  Alcotest.run "integration"
    [ ( "paper scenario",
        [ Alcotest.test_case "section 2.4 end-to-end" `Quick test_scenario_2_4 ] );
      ( "convergence",
        [ Alcotest.test_case "replicas converge (all protocols)" `Slow
            test_replicas_converge ] );
      ( "random configs",
        [ QCheck_alcotest.to_alcotest prop_random_configs_hold_invariants ] );
      ( "serializability",
        [ Alcotest.test_case "small serial equivalence" `Quick test_serializable_small;
          Alcotest.test_case "many seeds last-writer" `Quick
            test_serializable_many_seeds ] ) ]
