(* Tests for the DTX cluster: coordinator/participant execution, commit and
   abort propagation, waiting/waking, deadlock handling, failure injection,
   determinism. *)

module Sim = Dtx_sim.Sim
module Net = Dtx_net.Net
module Cluster = Dtx.Cluster
module Site = Dtx.Site
module Txn = Dtx_txn.Txn
module Op = Dtx_update.Op
module P = Dtx_xpath.Parser
module Eval = Dtx_xpath.Eval
module Protocol = Dtx_protocol.Protocol
module Allocation = Dtx_frag.Allocation
module Storage = Dtx_storage.Storage
module Doc = Dtx_xml.Doc
module Node = Dtx_xml.Node
module Xml_parser = Dtx_xml.Parser

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let d1_text =
  "<people><person><id>4</id><name>Ana</name></person></people>"

let d2_text =
  "<products><product><id>14</id><description>Pen</description><price>1.20</price></product></products>"

(* A two-site cluster: d1 on sites {0,1} (replicated), d2 on {1} only. *)
let make_cluster ?(protocol = Protocol.xdgl) ?(deadlock_period_ms = 5.0)
    ?(commit = Cluster.One_phase) () =
  let sim = Sim.create () in
  let net = Net.of_config ~sim Net.Config.lan in
  let d1 = Xml_parser.parse ~name:"d1" d1_text in
  let d2 = Xml_parser.parse ~name:"d2" d2_text in
  let placements =
    [ { Allocation.doc = d1; sites = [ 0; 1 ] };
      { Allocation.doc = d2; sites = [ 1 ] } ]
  in
  let config =
    { (Cluster.default_config ~protocol ()) with deadlock_period_ms; commit }
  in
  let cluster = Cluster.create ~sim ~net ~n_sites:2 config ~placements in
  Cluster.shutdown_when_idle cluster;
  (sim, net, cluster)

let submit cluster ~coordinator ops k =
  Cluster.submit cluster ~client:0 ~coordinator ~ops ~on_finish:k |> ignore

let replica cluster ~site ~doc =
  let s = (Cluster.sites cluster).(site) in
  match Protocol.doc s.Site.protocol doc with
  | Some d -> d
  | None -> Alcotest.failf "site %d has no %s" site doc

let q s = Op.Query (P.parse s)

let status_name = function
  | Some st -> Txn.status_to_string st
  | None -> "gone"

(* --- basic lifecycle ----------------------------------------------------- *)

let test_read_only_commit () =
  let sim, _, cluster = make_cluster () in
  let result = ref None in
  submit cluster ~coordinator:0
    [ ("d1", q "/people/person/name"); ("d2", q "/products/product/price") ]
    (fun txn -> result := Some txn);
  Sim.run sim;
  match !result with
  | Some txn ->
    checkb "committed" true (txn.Txn.status = Txn.Committed);
    checkb "took time" true (Txn.response_time txn > 0.0);
    check "stats" 1 (Cluster.stats cluster).Cluster.committed
  | None -> Alcotest.fail "transaction never finished"

let test_update_replicated_everywhere () =
  let sim, _, cluster = make_cluster () in
  let done_ = ref false in
  submit cluster ~coordinator:0
    [ ( "d1",
        Op.Insert
          { target = P.parse "/people";
            pos = Op.Into;
            fragment = "<person><id>22</id><name>Patricia</name></person>" } ) ]
    (fun txn ->
      done_ := true;
      checkb "committed" true (txn.Txn.status = Txn.Committed));
  Sim.run sim;
  checkb "finished" true !done_;
  (* Both replicas of d1 got the insert and agree. *)
  let r0 = replica cluster ~site:0 ~doc:"d1" in
  let r1 = replica cluster ~site:1 ~doc:"d1" in
  check "site 0 sees it" 1
    (List.length (Eval.select r0 (P.parse "//person[id = \"22\"]")));
  checkb "replicas equal" true (Doc.equal_structure r0 r1);
  (* Commit persisted to storage (DataManager write-back). *)
  let st0 = (Cluster.sites cluster).(0).Site.storage in
  match Storage.load st0 "d1" with
  | Some stored ->
    check "persisted" 1
      (List.length (Eval.select stored (P.parse "//person[id = \"22\"]")))
  | None -> Alcotest.fail "d1 not in storage"

let test_failed_op_aborts_and_undoes () =
  let sim, _, cluster = make_cluster () in
  let statuses = ref [] in
  (* Op 1 inserts (succeeds), op 2 removes a missing target (fails): the
     whole transaction must abort and the insert must be rolled back. *)
  submit cluster ~coordinator:0
    [ ( "d1",
        Op.Insert
          { target = P.parse "/people"; pos = Op.Into; fragment = "<person><id>9</id></person>" } );
      ("d1", Op.Remove (P.parse "//person[id = \"12345\"]")) ]
    (fun txn -> statuses := txn.Txn.status :: !statuses);
  Sim.run sim;
  Alcotest.(check (list string)) "aborted" [ "aborted" ]
    (List.map Txn.status_to_string !statuses);
  let r0 = replica cluster ~site:0 ~doc:"d1" in
  check "insert undone at site 0" 0
    (List.length (Eval.select r0 (P.parse "//person[id = \"9\"]")));
  let r1 = replica cluster ~site:1 ~doc:"d1" in
  checkb "replicas equal after abort" true (Doc.equal_structure r0 r1);
  check "locks all released" 0
    (Array.fold_left
       (fun acc (s : Site.t) -> acc + Dtx_locks.Table.lock_count s.Site.table)
       0 (Cluster.sites cluster))

let test_empty_txn () =
  let sim, _, cluster = make_cluster () in
  let st = ref None in
  submit cluster ~coordinator:1 [] (fun txn -> st := Some txn.Txn.status);
  Sim.run sim;
  checkb "committed" true (!st = Some Txn.Committed);
  ignore cluster

let test_unknown_doc_aborts () =
  let sim, _, cluster = make_cluster () in
  let st = ref None in
  submit cluster ~coordinator:0 [ ("ghost", q "/x") ] (fun txn -> st := Some txn.Txn.status);
  Sim.run sim;
  checkb "aborted" true (!st = Some Txn.Aborted);
  check "not a deadlock" 0 (Cluster.stats cluster).Cluster.deadlock_aborts

let test_bad_coordinator_rejected () =
  let _, _, cluster = make_cluster () in
  Alcotest.check_raises "bad site" (Invalid_argument "Cluster.submit: bad coordinator site")
    (fun () -> submit cluster ~coordinator:7 [] (fun _ -> ()))

(* --- blocking and waking -------------------------------------------------- *)

let test_conflicting_txns_serialize () =
  let sim, _, cluster = make_cluster () in
  let finished = ref [] in
  (* Reader holds ST over products for the whole transaction (three ops);
     the writer's insert needs IX on the same DataGuide node, so it must
     wait and then commit after the reader releases. *)
  submit cluster ~coordinator:1
    [ ("d2", q "/products/product");
      ("d2", q "/products/product/price");
      ("d2", q "/products/product/description") ]
    (fun txn -> finished := ("reader", txn.Txn.status, txn.Txn.finished_at) :: !finished);
  submit cluster ~coordinator:1
    [ ( "d2",
        Op.Insert
          { target = P.parse "/products";
            pos = Op.Into;
            fragment = "<product><id>13</id><description>Mouse</description><price>10.30</price></product>" } ) ]
    (fun txn -> finished := ("writer", txn.Txn.status, txn.Txn.finished_at) :: !finished);
  Sim.run sim;
  check "both finished" 2 (List.length !finished);
  List.iter
    (fun (who, st, _) ->
      checkb (who ^ " committed") true (st = Txn.Committed))
    !finished;
  let t_of who = List.find (fun (w, _, _) -> w = who) !finished in
  let _, _, reader_t = t_of "reader" and _, _, writer_t = t_of "writer" in
  checkb "writer finished after reader" true (writer_t > reader_t);
  checkb "some blocking happened" true (Cluster.total_blocked_ops cluster > 0);
  (* And the insert is there. *)
  check "product inserted" 1
    (List.length
       (Eval.select (replica cluster ~site:1 ~doc:"d2")
          (P.parse "//product[id = \"13\"]")))

let test_paper_scenario_deadlock () =
  (* §2.4: t1 = query d1, insert into d2; t2 = query d2, insert into d1.
     Cross conflicts produce a distributed deadlock; the newest transaction
     (t2) is the victim; t1 commits. *)
  let sim, _, cluster = make_cluster () in
  let outcome = Hashtbl.create 4 in
  submit cluster ~coordinator:0
    [ ("d1", q "/people/person[id = \"4\"]");
      ( "d2",
        Op.Insert
          { target = P.parse "/products";
            pos = Op.Into;
            fragment = "<product><id>13</id><description>Mouse</description><price>10.30</price></product>" } ) ]
    (fun txn -> Hashtbl.replace outcome "t1" txn.Txn.status);
  submit cluster ~coordinator:1
    [ ("d2", q "/products/product");
      ( "d1",
        Op.Insert
          { target = P.parse "/people";
            pos = Op.Into;
            fragment = "<person><id>22</id><name>Patricia</name></person>" } ) ]
    (fun txn -> Hashtbl.replace outcome "t2" txn.Txn.status);
  Sim.run sim;
  checkb "t1 committed" true (Hashtbl.find_opt outcome "t1" = Some Txn.Committed);
  checkb "t2 aborted (newest in cycle)" true
    (Hashtbl.find_opt outcome "t2" = Some Txn.Aborted);
  let s = Cluster.stats cluster in
  check "one deadlock abort" 1 s.Cluster.deadlock_aborts;
  checkb "detector found it" true
    (s.Cluster.distributed_deadlocks + s.Cluster.local_deadlocks >= 1);
  (* t1's product is in; t2's person is not. *)
  check "Mouse inserted" 1
    (List.length
       (Eval.select (replica cluster ~site:1 ~doc:"d2") (P.parse "//product[id = \"13\"]")));
  check "Patricia rolled back" 0
    (List.length
       (Eval.select (replica cluster ~site:0 ~doc:"d1") (P.parse "//person[id = \"22\"]")));
  checkb "d1 replicas agree" true
    (Doc.equal_structure (replica cluster ~site:0 ~doc:"d1")
       (replica cluster ~site:1 ~doc:"d1"))

(* --- failure injection ---------------------------------------------------- *)

let test_site_failure_aborts () =
  let sim, _, cluster = make_cluster () in
  Cluster.inject_site_failure cluster ~site:1;
  let st = ref None in
  submit cluster ~coordinator:0 [ ("d2", q "/products/product") ] (fun txn ->
      st := Some txn.Txn.status);
  Sim.run sim;
  (* d2 only lives on the failed site: the op fails, the abort protocol also
     cannot complete there, so per §2.2 the transaction ends as failed. *)
  checkb "aborted or failed" true (!st = Some Txn.Aborted || !st = Some Txn.Failed);
  check "nothing committed" 0 (Cluster.stats cluster).Cluster.committed

let test_crash_recovery_cycle () =
  let sim, _, cluster = make_cluster () in
  let statuses = ref [] in
  let note name txn = statuses := (name, txn.Txn.status) :: !statuses in
  (* t1 commits an insert into d1 (replicated at sites 0 and 1). *)
  submit cluster ~coordinator:0
    [ ( "d1",
        Op.Insert
          { target = P.parse "/people"; pos = Op.Into; fragment = "<person><id>7</id></person>" } ) ]
    (note "t1");
  Sim.run sim;
  (* Site 1 crashes, losing its memory. *)
  Cluster.crash_site cluster ~site:1;
  (* t2 needs d1 at both sites; site 1 is down, so it cannot commit. *)
  submit cluster ~coordinator:0
    [ ( "d1",
        Op.Insert
          { target = P.parse "/people"; pos = Op.Into; fragment = "<person><id>8</id></person>" } ) ]
    (note "t2");
  Sim.run sim;
  (* Recovery: reload committed state from the durable store. *)
  Cluster.recover_site cluster ~site:1;
  submit cluster ~coordinator:0
    [ ( "d1",
        Op.Insert
          { target = P.parse "/people"; pos = Op.Into; fragment = "<person><id>9</id></person>" } ) ]
    (note "t3");
  Sim.run sim;
  let status name = List.assoc name !statuses in
  checkb "t1 committed" true (status "t1" = Txn.Committed);
  checkb "t2 aborted or failed" true
    (status "t2" = Txn.Aborted || status "t2" = Txn.Failed);
  checkb "t3 committed after recovery" true (status "t3" = Txn.Committed);
  let r0 = replica cluster ~site:0 ~doc:"d1" and r1 = replica cluster ~site:1 ~doc:"d1" in
  checkb "replicas converged after recovery" true (Doc.equal_structure r0 r1);
  check "t1's person survived the crash" 1
    (List.length (Eval.select r1 (P.parse "//person[id = \"7\"]")));
  check "t2's person nowhere" 0
    (List.length (Eval.select r0 (P.parse "//person[id = \"8\"]")));
  check "t3's person everywhere" 1
    (List.length (Eval.select r1 (P.parse "//person[id = \"9\"]")))

let test_history_serializable () =
  let sim, _, cluster = make_cluster () in
  let h = Cluster.enable_history cluster in
  submit cluster ~coordinator:0
    [ ("d1", q "/people/person");
      ( "d1",
        Op.Insert
          { target = P.parse "/people"; pos = Op.Into; fragment = "<person><id>5</id></person>" } ) ]
    (fun _ -> ());
  submit cluster ~coordinator:1
    [ ("d1", q "/people/person/name");
      ( "d1",
        Op.Change { target = P.parse "//person[id = \"4\"]/name"; new_text = "Ana B" } ) ]
    (fun _ -> ());
  Sim.run sim;
  checkb "history recorded accesses" true (Dtx.History.size h > 0);
  (match Cluster.check_serializable cluster with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  checkb "committed list matches stats" true
    (List.length (Dtx.History.committed h) = (Cluster.stats cluster).Cluster.committed)

let test_history_requires_enabling () =
  let _, _, cluster = make_cluster () in
  Alcotest.check_raises "not enabled"
    (Invalid_argument "Cluster.check_serializable: history not enabled")
    (fun () -> ignore (Cluster.check_serializable cluster))

let test_site_failure_heals () =
  let sim, _, cluster = make_cluster () in
  Cluster.inject_site_failure cluster ~site:1;
  Cluster.heal_site cluster ~site:1;
  let st = ref None in
  submit cluster ~coordinator:0 [ ("d2", q "/products/product") ] (fun txn ->
      st := Some txn.Txn.status);
  Sim.run sim;
  checkb "healed -> commits" true (!st = Some Txn.Committed)

(* --- two-phase commit and the write-ahead log ------------------------------ *)

module Wal = Dtx.Wal

let test_wal_unit () =
  let w = Wal.create () in
  checkb "unknown" true (Wal.outcome_of w 1 = `Unknown);
  Wal.append w (Wal.Prepared { txn = 1; time = 1.0; coord = 0; redo = [] });
  Wal.append w
    (Wal.Prepared
       { txn = 2; time = 1.5; coord = 0;
         redo = [ ("d1", "REMOVE /products/product[1]") ] });
  Wal.append w (Wal.Committed { txn = 1; time = 2.0 });
  checkb "committed" true (Wal.outcome_of w 1 = `Committed);
  checkb "in doubt" true (Wal.outcome_of w 2 = `In_doubt);
  Alcotest.(check (list int)) "in_doubt list" [ 2 ] (Wal.in_doubt w);
  Alcotest.(check (list int)) "resolved" [ 2 ] (Wal.resolve_presumed_abort w);
  checkb "now aborted" true (Wal.outcome_of w 2 = `Aborted);
  Alcotest.(check (list int)) "none left" [] (Wal.in_doubt w);
  check "entries" 4 (Wal.length w)

let test_two_phase_commit_works () =
  let sim, _, cluster = make_cluster ~commit:Cluster.Two_phase () in
  let st = ref None in
  submit cluster ~coordinator:0
    [ ( "d1",
        Op.Insert
          { target = P.parse "/people"; pos = Op.Into; fragment = "<person><id>77</id></person>" } ) ]
    (fun txn -> st := Some txn.Txn.status);
  Sim.run sim;
  checkb "committed" true (!st = Some Txn.Committed);
  (* Both involved sites logged Prepared then Committed. *)
  Array.iter
    (fun (s : Site.t) ->
      let entries = Wal.entries s.Site.wal in
      checkb "prepared logged" true
        (List.exists (function Wal.Prepared _ -> true | _ -> false) entries);
      checkb "committed logged" true
        (List.exists (function Wal.Committed _ -> true | _ -> false) entries);
      Alcotest.(check (list int)) "nothing in doubt" [] (Wal.in_doubt s.Site.wal))
    (Cluster.sites cluster);
  checkb "replicas equal" true
    (Doc.equal_structure (replica cluster ~site:0 ~doc:"d1")
       (replica cluster ~site:1 ~doc:"d1"))

let test_two_phase_costs_a_round () =
  let run commit =
    let sim, net, cluster = make_cluster ~commit () in
    let finished = ref 0.0 in
    submit cluster ~coordinator:0
      [ ("d1", q "/people/person") ]
      (fun txn -> finished := Txn.response_time txn);
    Sim.run sim;
    (!finished, Net.messages net, cluster)
  in
  let t1, m1, _ = run Cluster.One_phase in
  let t2, m2, _ = run Cluster.Two_phase in
  checkb "2PC slower" true (t2 > t1);
  checkb "2PC sends more messages" true (m2 > m1)

let test_two_phase_crash_recovery () =
  (* Crash site 1 while a two-phase workload is in flight; whatever point
     the protocol reached, recovery must leave no in-doubt transactions and
     consistent replicas. *)
  let sim, _, cluster = make_cluster ~commit:Cluster.Two_phase () in
  for i = 0 to 4 do
    submit cluster ~coordinator:(i mod 2)
      [ ( "d1",
          Op.Insert
            { target = P.parse "/people";
              pos = Op.Into;
              fragment = Printf.sprintf "<person><id>c%d</id></person>" i } ) ]
      (fun _ -> ())
  done;
  (* Crash mid-flight. *)
  ignore (Sim.schedule sim ~delay:1.2 (fun () -> Cluster.crash_site cluster ~site:1));
  Sim.run sim;
  Cluster.recover_site cluster ~site:1;
  Alcotest.(check (list int)) "no in-doubt txns after recovery" []
    (Wal.in_doubt (Cluster.sites cluster).(1).Site.wal);
  (* Every transaction reached a final state. *)
  check "none active" 0 (Cluster.active_txns cluster);
  (* The recovered replica equals the committed store state; committed
     transactions' effects survived, in-flight ones are absent. *)
  let s = Cluster.stats cluster in
  let r1 = replica cluster ~site:1 ~doc:"d1" in
  let persons =
    List.length (Eval.select r1 (P.parse "/people/person")) - 1 (* Ana *)
  in
  check "recovered state holds exactly the committed inserts" s.Cluster.committed
    persons

let test_cluster_on_paged_storage () =
  (* The whole mechanism over the paged DataManager backend: commits persist
     into the page file, a crash loses memory, recovery reloads from the
     pages. *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dtx_paged_cluster_%d" (Unix.getpid ()))
  in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  let sim = Sim.create () in
  let net = Net.of_config ~sim Net.Config.lan in
  let d1 = Xml_parser.parse ~name:"d1" d1_text in
  let config =
    { (Cluster.default_config ()) with
      storage = `Paged dir;
      deadlock_period_ms = 5.0 }
  in
  let cluster =
    Cluster.create ~sim ~net ~n_sites:2 config
      ~placements:[ { Allocation.doc = d1; sites = [ 0; 1 ] } ]
  in
  Cluster.shutdown_when_idle cluster;
  let st = ref None in
  submit cluster ~coordinator:0
    [ ( "d1",
        Op.Insert
          { target = P.parse "/people"; pos = Op.Into; fragment = "<person><id>pg</id></person>" } ) ]
    (fun txn -> st := Some txn.Txn.status);
  Sim.run sim;
  checkb "committed over paged storage" true (!st = Some Txn.Committed);
  Cluster.crash_site cluster ~site:1;
  Cluster.recover_site cluster ~site:1;
  check "recovered replica holds the committed insert" 1
    (List.length
       (Eval.select (replica cluster ~site:1 ~doc:"d1") (P.parse "//person[id = \"pg\"]")));
  checkb "replicas equal" true
    (Doc.equal_structure (replica cluster ~site:0 ~doc:"d1")
       (replica cluster ~site:1 ~doc:"d1"));
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

(* --- deadlock prevention policies ------------------------------------------- *)

let make_policy_cluster policy =
  let sim = Sim.create () in
  let net = Net.of_config ~sim Net.Config.lan in
  let d1 = Xml_parser.parse ~name:"d1" d1_text in
  let d2 = Xml_parser.parse ~name:"d2" d2_text in
  let placements =
    [ { Allocation.doc = d1; sites = [ 0; 1 ] };
      { Allocation.doc = d2; sites = [ 1 ] } ]
  in
  let config =
    { (Cluster.default_config ()) with
      deadlock_period_ms = 5.0;
      deadlock_policy = policy }
  in
  let cluster = Cluster.create ~sim ~net ~n_sites:2 config ~placements in
  Cluster.shutdown_when_idle cluster;
  (sim, cluster)

(* The §2.4 crossing transactions again — under prevention the cycle can
   never form, so the detector finds nothing, yet progress is preserved. *)
let crossing_txns cluster =
  let outcome = Hashtbl.create 4 in
  ignore
    (Cluster.submit cluster ~client:1 ~coordinator:0
       ~ops:
         [ ("d1", q "/people/person[id = \"4\"]");
           ( "d2",
             Op.Insert
               { target = P.parse "/products"; pos = Op.Into;
                 fragment = "<product><id>13</id></product>" } ) ]
       ~on_finish:(fun txn -> Hashtbl.replace outcome "t1" txn.Txn.status));
  ignore
    (Cluster.submit cluster ~client:2 ~coordinator:1
       ~ops:
         [ ("d2", q "/products/product");
           ( "d1",
             Op.Insert
               { target = P.parse "/people"; pos = Op.Into;
                 fragment = "<person><id>22</id></person>" } ) ]
       ~on_finish:(fun txn -> Hashtbl.replace outcome "t2" txn.Txn.status));
  outcome

let test_wait_die () =
  let sim, cluster = make_policy_cluster Dtx.Site.Wait_die in
  let outcome = crossing_txns cluster in
  Sim.run sim;
  let s = Cluster.stats cluster in
  (* t1 is older: it survives; t2 dies when it meets t1's locks. *)
  checkb "t1 committed" true (Hashtbl.find_opt outcome "t1" = Some Txn.Committed);
  checkb "t2 died" true (Hashtbl.find_opt outcome "t2" = Some Txn.Aborted);
  check "no distributed deadlock possible" 0 s.Cluster.distributed_deadlocks;
  check "nothing wounded" 0 s.Cluster.wounded;
  checkb "death counted as deadlock abort" true (s.Cluster.deadlock_aborts >= 1)

let test_wound_wait () =
  let sim, cluster = make_policy_cluster Dtx.Site.Wound_wait in
  let outcome = crossing_txns cluster in
  Sim.run sim;
  let s = Cluster.stats cluster in
  (* The older t1 wounds t2 when it needs t2's locks. *)
  checkb "t1 committed" true (Hashtbl.find_opt outcome "t1" = Some Txn.Committed);
  checkb "t2 wounded -> aborted" true
    (Hashtbl.find_opt outcome "t2" = Some Txn.Aborted);
  checkb "a wound happened" true (s.Cluster.wounded >= 1);
  check "no distributed deadlock possible" 0 s.Cluster.distributed_deadlocks;
  check "no locks leak" 0
    (Array.fold_left
       (fun acc (site : Site.t) -> acc + Dtx_locks.Table.lock_count site.Site.table)
       0 (Cluster.sites cluster))

let test_prevention_policies_converge () =
  List.iter
    (fun policy ->
      let sim, cluster = make_policy_cluster policy in
      for i = 0 to 11 do
        Cluster.submit cluster ~client:i ~coordinator:(i mod 2)
          ~ops:
            [ ( "d1",
                Op.Insert
                  { target = P.parse "/people"; pos = Op.Into;
                    fragment = Printf.sprintf "<person><id>q%d</id></person>" i } );
              ("d1", q "/people/person") ]
          ~on_finish:(fun _ -> ())
        |> ignore
      done;
      Sim.run sim;
      check "all done" 0 (Cluster.active_txns cluster);
      checkb "replicas equal" true
        (Doc.equal_structure (replica cluster ~site:0 ~doc:"d1")
           (replica cluster ~site:1 ~doc:"d1")))
    [ Dtx.Site.Detection; Dtx.Site.Wait_die; Dtx.Site.Wound_wait ]

(* --- lossy links + timeouts ------------------------------------------------- *)

let test_lossy_network_all_txns_terminate () =
  (* With 10% operation-message loss and timeouts, every transaction still
     reaches a final state, locks never leak, and replicas stay equal. *)
  let sim = Sim.create () in
  let net = Net.of_config ~sim { Net.Config.lan with drop_pct = 10; seed = 99 } in
  let d1 = Xml_parser.parse ~name:"d1" d1_text in
  let placements = [ { Allocation.doc = d1; sites = [ 0; 1 ] } ] in
  let config =
    { (Cluster.default_config ()) with
      deadlock_period_ms = 5.0;
      op_timeout_ms = Some 15.0 }
  in
  let cluster = Cluster.create ~sim ~net ~n_sites:2 config ~placements in
  Cluster.shutdown_when_idle cluster;
  let finished = ref 0 in
  for i = 0 to 19 do
    Cluster.submit cluster ~client:i ~coordinator:(i mod 2)
      ~ops:
        [ ( "d1",
            Op.Insert
              { target = P.parse "/people";
                pos = Op.Into;
                fragment = Printf.sprintf "<person><id>x%d</id></person>" i } ) ]
      ~on_finish:(fun _ -> incr finished)
    |> ignore
  done;
  Sim.run sim;
  check "all 20 finished" 20 !finished;
  check "none stuck" 0 (Cluster.active_txns cluster);
  checkb "messages were dropped" true (Net.dropped net > 0);
  let s = Cluster.stats cluster in
  checkb "some committed" true (s.Cluster.committed > 0);
  checkb "some timed out / aborted" true (s.Cluster.aborted > 0);
  check "committed + aborted + failed = 20" 20
    (s.Cluster.committed + s.Cluster.aborted + s.Cluster.failed);
  Array.iter
    (fun (site : Site.t) ->
      check "no residual locks" 0 (Dtx_locks.Table.lock_count site.Site.table))
    (Cluster.sites cluster);
  checkb "replicas equal" true
    (Doc.equal_structure (replica cluster ~site:0 ~doc:"d1")
       (replica cluster ~site:1 ~doc:"d1"))

let test_reliable_network_drops_nothing () =
  let sim = Sim.create () in
  let net = Net.of_config ~sim { Net.Config.lan with drop_pct = 0 } in
  ignore sim;
  check "no drops configured" 0 (Net.dropped net)

(* A lossy link can also deliver late duplicates. Re-delivering end-protocol
   and wake messages for an already-finished transaction must change
   nothing: no new outcomes, no document mutation, no resurrected locks. *)
let test_duplicate_delivery_idempotent () =
  let module Msg = Dtx_net.Msg in
  let sim, net, cluster = make_cluster () in
  let txn_id = ref (-1) in
  submit cluster ~coordinator:0
    [ ( "d1",
        Op.Insert
          { target = P.parse "/people";
            pos = Op.Into;
            fragment = "<person><id>dup</id></person>" } ) ]
    (fun txn -> txn_id := txn.Txn.id);
  Sim.run sim;
  checkb "committed first" true (!txn_id >= 0);
  let snapshot () =
    let s0 = Cluster.stats cluster in
    ( s0.Cluster.committed, s0.Cluster.aborted, s0.Cluster.failed,
      Array.fold_left
        (fun acc (site : Site.t) ->
          acc + Dtx_locks.Table.lock_count site.Site.table)
        0 (Cluster.sites cluster) )
  in
  let before = snapshot () in
  let txn = !txn_id in
  (* Late duplicates: Commit and Abort re-delivered to every participant,
     a stale Wake re-delivered to the coordinator. *)
  Array.iter
    (fun (site : Site.t) ->
      let dst = site.Site.id in
      Net.dispatch net ~src:0 ~dst (Msg.Commit { txn });
      Net.dispatch net ~src:0 ~dst (Msg.Abort { txn; quiet = false });
      Net.dispatch net ~src:0 ~dst (Msg.Abort { txn; quiet = true }))
    (Cluster.sites cluster);
  Net.dispatch net ~src:1 ~dst:0 (Msg.Wake { txn });
  Sim.run sim;
  checkb "outcome counters unchanged" true (before = snapshot ());
  check "insert still applied once" 1
    (List.length
       (Eval.select
          (replica cluster ~site:0 ~doc:"d1")
          (P.parse "//person[id = \"dup\"]")));
  checkb "replicas equal" true
    (Doc.equal_structure (replica cluster ~site:0 ~doc:"d1")
       (replica cluster ~site:1 ~doc:"d1"))

(* --- determinism ----------------------------------------------------------- *)

let run_trace () =
  let sim, net, cluster = make_cluster () in
  let log = ref [] in
  submit cluster ~coordinator:0
    [ ("d1", q "/people/person"); ("d2", q "/products/product") ]
    (fun txn -> log := (txn.Txn.id, Txn.status_to_string txn.Txn.status, txn.Txn.finished_at) :: !log);
  submit cluster ~coordinator:1
    [ ( "d2",
        Op.Insert
          { target = P.parse "/products"; pos = Op.Into; fragment = "<product><id>99</id></product>" } ) ]
    (fun txn -> log := (txn.Txn.id, Txn.status_to_string txn.Txn.status, txn.Txn.finished_at) :: !log);
  Sim.run sim;
  (!log, Net.messages net)

let test_deterministic () =
  let a = run_trace () and b = run_trace () in
  checkb "identical traces" true (a = b)

let test_status_query () =
  let sim, _, cluster = make_cluster () in
  let t =
    Cluster.submit cluster ~client:0 ~coordinator:0
      ~ops:[ ("d1", q "/people/person") ]
      ~on_finish:(fun _ -> ())
  in
  checkb "active while queued" true
    (status_name (Cluster.txn_status cluster t.Txn.id) = "active");
  Sim.run sim;
  checkb "gone after finish" true (Cluster.txn_status cluster t.Txn.id = None)

(* --- commute: the optimistic protocol ------------------------------------ *)

(* Two read-only transactions provably commute, so the optimistic fast path
   ships them lock-free: zero lock requests, zero blocking, both commit. *)
let test_commute_readers_lock_free () =
  let sim, _, cluster = make_cluster ~protocol:Protocol.commute () in
  let done_ = ref 0 in
  submit cluster ~coordinator:1
    [ ("d2", q "/products/product/price") ]
    (fun txn ->
      checkb "reader 1 committed" true (txn.Txn.status = Txn.Committed);
      incr done_);
  submit cluster ~coordinator:1
    [ ("d2", q "/products/product/description") ]
    (fun txn ->
      checkb "reader 2 committed" true (txn.Txn.status = Txn.Committed);
      incr done_);
  Sim.run sim;
  check "both finished" 2 !done_;
  check "no locks acquired" 0 (Cluster.total_lock_requests cluster);
  check "no blocking" 0 (Cluster.total_blocked_ops cluster)

(* The directed invalidated-assumption case: an optimistic reader is still
   running when a conflicting writer is admitted. The writer falls back to
   full XDGL locks (its operations are not provably commuting), and the
   reader — which executed lock-free on a now-false assumption — must abort
   through the validation path, never commit. *)
let test_commute_invalidation_aborts_optimist () =
  let sim, _, cluster = make_cluster ~protocol:Protocol.commute () in
  let statuses = ref [] in
  submit cluster ~coordinator:1
    [ ("d2", q "/products/product");
      ("d2", q "/products/product/price") ]
    (fun txn -> statuses := ("reader", txn.Txn.status) :: !statuses);
  submit cluster ~coordinator:1
    [ ( "d2",
        Op.Insert
          { target = P.parse "/products";
            pos = Op.Into;
            fragment = "<product><id>13</id><price>9.99</price></product>" }
      ) ]
    (fun txn -> statuses := ("writer", txn.Txn.status) :: !statuses);
  Sim.run sim;
  check "both finished" 2 (List.length !statuses);
  checkb "writer committed" true
    (List.assoc "writer" !statuses = Txn.Committed);
  checkb "reader aborted" true (List.assoc "reader" !statuses = Txn.Aborted);
  check "one validation abort" 1 (Cluster.stats cluster).validation_aborts;
  checkb "writer fell back to real locks" true
    (Cluster.total_lock_requests cluster > 0)

(* Structural drift: a fully-executed optimistic transaction is exempt from
   pairwise invalidation, but a later admission that grows the DataGuide
   past its admission snapshot must still fail validation — the stale
   footprints never saw the new schema paths. Driven through the Optimist
   API directly to pin the exact mechanism. *)
let test_commute_structural_drift_fails_validation () =
  let d2 = Xml_parser.parse ~name:"d2" d2_text in
  let o = Dtx.Optimist.create ~protocol:Protocol.commute ~docs:[ d2 ] in
  let flags =
    Dtx.Optimist.admit o ~txn:1 ~ops:[| ("d2", q "/products/product") |]
  in
  checkb "reader admitted optimistically" true (Array.for_all Fun.id flags);
  Dtx.Optimist.note_all_executed o ~txn:1;
  let ins =
    Op.Insert
      { target = P.parse "/products/product";
        pos = Op.Into;
        fragment = "<warranty>2y</warranty>" }
  in
  ignore (Dtx.Optimist.admit o ~txn:2 ~ops:[| ("d2", ins) |]);
  (match Dtx.Optimist.validate o ~txn:1 with
   | Error reason ->
     checkb "names the structural mutation" true
       (let nh = String.length reason in
        let needle = "structural" in
        let nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub reason i nn = needle || go (i + 1))
        in
        go 0)
   | Ok () -> Alcotest.fail "stale optimistic reader passed validation");
  (match Dtx.Optimist.validate o ~txn:2 with
   | Ok () -> ()
   | Error r -> Alcotest.failf "writer's own growth invalidated it: %s" r)

let () =
  Alcotest.run "cluster"
    [ ( "lifecycle",
        [ Alcotest.test_case "read-only commit" `Quick test_read_only_commit;
          Alcotest.test_case "update replicates" `Quick test_update_replicated_everywhere;
          Alcotest.test_case "failed op aborts+undoes" `Quick
            test_failed_op_aborts_and_undoes;
          Alcotest.test_case "empty txn" `Quick test_empty_txn;
          Alcotest.test_case "unknown doc" `Quick test_unknown_doc_aborts;
          Alcotest.test_case "bad coordinator" `Quick test_bad_coordinator_rejected;
          Alcotest.test_case "status query" `Quick test_status_query ] );
      ( "concurrency",
        [ Alcotest.test_case "conflicts serialize" `Quick test_conflicting_txns_serialize;
          Alcotest.test_case "paper scenario deadlock (2.4)" `Quick
            test_paper_scenario_deadlock ] );
      ( "failures",
        [ Alcotest.test_case "site failure" `Quick test_site_failure_aborts;
          Alcotest.test_case "heal" `Quick test_site_failure_heals;
          Alcotest.test_case "crash + recovery" `Quick test_crash_recovery_cycle;
          Alcotest.test_case "paged storage end-to-end" `Quick
            test_cluster_on_paged_storage ] );
      ( "deadlock policies",
        [ Alcotest.test_case "wait-die" `Quick test_wait_die;
          Alcotest.test_case "wound-wait" `Quick test_wound_wait;
          Alcotest.test_case "all policies converge" `Quick
            test_prevention_policies_converge ] );
      ( "lossy links",
        [ Alcotest.test_case "all txns terminate under loss" `Quick
            test_lossy_network_all_txns_terminate;
          Alcotest.test_case "no loss by default" `Quick
            test_reliable_network_drops_nothing;
          Alcotest.test_case "duplicate delivery idempotent" `Quick
            test_duplicate_delivery_idempotent ] );
      ( "two-phase commit",
        [ Alcotest.test_case "wal unit" `Quick test_wal_unit;
          Alcotest.test_case "2PC commits + logs" `Quick test_two_phase_commit_works;
          Alcotest.test_case "2PC costs a round" `Quick test_two_phase_costs_a_round;
          Alcotest.test_case "crash recovery, presumed abort" `Quick
            test_two_phase_crash_recovery ] );
      ( "history",
        [ Alcotest.test_case "serializable" `Quick test_history_serializable;
          Alcotest.test_case "requires enabling" `Quick test_history_requires_enabling ] );
      ( "commute",
        [ Alcotest.test_case "commuting readers lock-free" `Quick
            test_commute_readers_lock_free;
          Alcotest.test_case "invalidated optimist aborts" `Quick
            test_commute_invalidation_aborts_optimist;
          Alcotest.test_case "structural drift fails validation" `Quick
            test_commute_structural_drift_fails_validation ] );
      ("determinism", [ Alcotest.test_case "same trace" `Quick test_deterministic ]) ]
