(* Tests for the symbolic soundness certifier (Dtx_cert): clean
   certification of every registered protocol, precision ordering, the
   four seeded faults, FSM/WAL pass integrity — plus the satellite
   registry and CLI-parsing hardening this PR ships alongside it
   (duplicate-alias rejection in Protocol.register, Protocol_arg edge
   cases).

   Ordering matters within this file: the wrong-caps fault registers its
   probe kind globally, and the Protocol_arg +2pc test registers a
   two_pc_compatible=false kind, so the clean-run tests come first and
   the registry-polluting ones last. Alcotest runs cases in declaration
   order. *)

module Cert = Dtx_cert.Cert
module Protocol = Dtx_protocol.Protocol
module Protocol_arg = Dtx_cli_args.Protocol_arg
module Mode = Dtx_locks.Mode
module Table = Dtx_locks.Table
module Op = Dtx_update.Op
module Doc = Dtx_xml.Doc

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let proto_by_name r name =
  match
    List.find_opt (fun p -> p.Cert.pr_name = name) r.Cert.r_protocols
  with
  | Some p -> p
  | None -> Alcotest.failf "protocol %s missing from the report" name

(* --- clean run ----------------------------------------------------------- *)

(* One clean run shared by the read-only assertions below; certify is a
   pure function of the registry, so recomputing it per test would only
   re-run the recovery simulations. *)
let clean = lazy (Cert.certify ())

let test_clean_certifies () =
  let r = Lazy.force clean in
  checkb "certified" true r.Cert.r_certified;
  check "violations" 0 r.Cert.r_violations;
  checkb "all six registered protocols present" true
    (List.length r.Cert.r_protocols >= 6);
  List.iter
    (fun p ->
      check
        (p.Cert.pr_name ^ " violations")
        0
        (List.length p.Cert.pr_violations))
    r.Cert.r_protocols

let test_clean_universe_shape () =
  let r = Lazy.force clean in
  List.iter
    (fun p ->
      checkb (p.Cert.pr_name ^ " pairs > 100") true (p.Cert.pr_pairs > 100);
      checkb
        (p.Cert.pr_name ^ " has conflicting pairs")
        true
        (p.Cert.pr_conflicting > 0);
      checkb
        (p.Cert.pr_name ^ " precision in [0,1]")
        true
        (p.Cert.pr_precision >= 0.0 && p.Cert.pr_precision <= 1.0))
    r.Cert.r_protocols;
  (* The three-way agreement only runs for the optimistic protocol. *)
  let commute = proto_by_name r "Commute" in
  checkb "commute pairs checked" true (commute.Cert.pr_commute_checked > 0)

let test_commute_precision_beats_xdgl () =
  (* The whole point of the optimistic protocol: semantic commutativity
     avoids lock collisions the XDGL footprint alone cannot, so its
     effective precision must be strictly higher. *)
  let r = Lazy.force clean in
  let xdgl = proto_by_name r "XDGL" in
  let commute = proto_by_name r "Commute" in
  checkb "commute precision > xdgl precision" true
    (commute.Cert.pr_precision > xdgl.Cert.pr_precision)

let test_fsm_pass_integrity () =
  let r = Lazy.force clean in
  check "two machines audited" 2 (List.length r.Cert.r_fsm);
  List.iter
    (fun f ->
      check (f.Cert.f_machine ^ " dropped") 0 f.Cert.f_dropped;
      check
        (f.Cert.f_machine ^ " violations")
        0
        (List.length f.Cert.f_violations);
      checkb (f.Cert.f_machine ^ " handles pairs") true (f.Cert.f_handled > 0);
      checkb
        (f.Cert.f_machine ^ " reached pairs recorded")
        true (f.Cert.f_reached > 0);
      (* Every (phase x kind) cell is classified exactly once, so the
         three buckets partition the table. *)
      checkb
        (f.Cert.f_machine ^ " table partitioned")
        true
        (f.Cert.f_handled + f.Cert.f_ignored + f.Cert.f_impossible
        > f.Cert.f_reached))
    r.Cert.r_fsm;
  check "required-reachable all reached" 0
    (List.length r.Cert.r_required_missing);
  check "wal crash points clean" 0 (List.length r.Cert.r_wal_violations)

let test_runtime_recorded () =
  let r = Lazy.force clean in
  checkb "universe pass timed" true (r.Cert.r_universe_seconds >= 0.0);
  checkb "runtime covers universe pass" true
    (r.Cert.r_runtime_seconds >= r.Cert.r_universe_seconds);
  (* An impossible budget must fail certification through the report. *)
  let tight = Cert.certify ~max_seconds:0.0 () in
  checkb "zero budget fails" false tight.Cert.r_certified;
  checkb "budget violation reported" true
    (List.exists
       (fun s ->
         String.length s >= 13 && String.sub s 0 13 = "universe pass")
       tight.Cert.r_required_missing)

let test_json_renders () =
  let r = Lazy.force clean in
  let js = Cert.to_json r in
  checkb "mentions certified" true
    (let needle = "\"certified\": true" in
     let n = String.length needle in
     let rec scan i =
       i + n <= String.length js
       && (String.sub js i n = needle || scan (i + 1))
     in
     scan 0)

(* --- seeded faults ------------------------------------------------------- *)

(* Each fault must produce a failed certification; a clean run afterwards
   must still certify (no cross-contamination through the global
   registry — the wrong-caps probe stays registered but is excluded from
   every pass by name). *)
let test_mutations_fail_then_clean () =
  List.iter
    (fun m ->
      let r = Cert.certify ~mutate:m () in
      checkb (Cert.mutation_to_string m ^ " fails") false r.Cert.r_certified;
      checkb
        (Cert.mutation_to_string m ^ " counts violations")
        true (r.Cert.r_violations > 0))
    Cert.mutations;
  let r = Cert.certify () in
  checkb "clean after faults" true r.Cert.r_certified

let test_mutation_names_roundtrip () =
  List.iter
    (fun m ->
      match Cert.mutation_of_string (Cert.mutation_to_string m) with
      | Some m' -> checkb (Cert.mutation_to_string m) true (m = m')
      | None -> Alcotest.failf "%s does not parse" (Cert.mutation_to_string m))
    Cert.mutations;
  checkb "unknown rejected" true (Cert.mutation_of_string "nope" = None)

(* --- satellite: registry duplicate rejection ----------------------------- *)

let dummy_derive ~dg:_ (d : Doc.t) op =
  let mode = if Op.is_update op then Mode.X else Mode.ST in
  Ok [ (Table.resource d.Doc.name 0, mode) ]

let caps_plain =
  {
    Protocol.uses_dataguide = false;
    caches_derivations = false;
    needs_validation = false;
    two_pc_compatible = false;
  }

let test_register_rejects_duplicates () =
  (* Both a duplicate primary name and a duplicate alias must be refused
     before anything is mutated, so the registry stays clean. *)
  let before = List.length (Protocol.registered ()) in
  let attempt name aliases =
    match
      Protocol.register ~name ~aliases ~caps:caps_plain
        ~derive:(fun ~dg d op ->
          match dummy_derive ~dg d op with
          | Ok rs -> Ok (rs, 1)
          | Error _ as e -> e)
        ~structure:(fun ~dg:_ _ -> 1)
        ()
    with
    | _ -> Alcotest.failf "register %s accepted a duplicate" name
    | exception Invalid_argument msg ->
      checkb (name ^ " error names the collision") true
        (let needle = "collides" in
         let n = String.length needle in
         let rec scan i =
           i + n <= String.length msg
           && (String.sub msg i n = needle || scan (i + 1))
         in
         scan 0)
  in
  attempt "XDGL" [];
  attempt "FreshName" [ "xdgl" ];
  check "registry unchanged" before (List.length (Protocol.registered ()))

(* --- satellite: Protocol_arg edge cases ---------------------------------- *)

let is_error = function Error (`Msg _) -> true | Ok _ -> false

let test_parse_unknown_protocol () =
  checkb "unknown name rejected" true
    (is_error (Protocol_arg.parse_config "nosuchprotocol"));
  checkb "unknown name in list rejected" true
    (is_error (Protocol_arg.parse_configs "xdgl,nosuchprotocol"))

let test_parse_duplicate_configs () =
  checkb "duplicate plain entry rejected" true
    (is_error (Protocol_arg.parse_configs "xdgl,xdgl"));
  checkb "duplicate via alias rejected" true
    (is_error (Protocol_arg.parse_configs "xdgl,XDGL"));
  (* Same protocol under different commit flavours is two distinct
     configs, not a duplicate. *)
  (match Protocol_arg.parse_configs "xdgl,xdgl+2pc" with
  | Ok cs -> check "flavours distinct" 2 (List.length cs)
  | Error (`Msg m) -> Alcotest.failf "flavour list rejected: %s" m);
  match Protocol_arg.parse_configs "all" with
  | Ok cs ->
    checkb "all covers every registered protocol" true
      (List.length cs >= List.length (Protocol.registered ()))
  | Error (`Msg m) -> Alcotest.failf "all rejected: %s" m

let test_parse_two_pc_incompatible () =
  (* Registers a two_pc_compatible=false kind, polluting the registry —
     which is why this test is declared last. *)
  let kind =
    Protocol.register ~name:"CertTestNo2pc" ~aliases:[] ~caps:caps_plain
      ~derive:(fun ~dg d op ->
        match dummy_derive ~dg d op with
        | Ok rs -> Ok (rs, 1)
        | Error _ as e -> e)
      ~structure:(fun ~dg:_ _ -> 1)
      ()
  in
  checkb "kind registered" true
    (Protocol.kind_of_string "certtestno2pc" = Some kind);
  (match Protocol_arg.parse_config "certtestno2pc" with
  | Ok (k, two_phase) ->
    checkb "plain flavour accepted" true (k = kind && not two_phase)
  | Error (`Msg m) -> Alcotest.failf "plain flavour rejected: %s" m);
  match Protocol_arg.parse_config "certtestno2pc+2pc" with
  | Ok _ -> Alcotest.fail "+2pc accepted on a two_pc_compatible=false kind"
  | Error (`Msg m) ->
    checkb "error mentions two-phase" true
      (let needle = "two-phase" in
       let n = String.length needle in
       let rec scan i =
         i + n <= String.length m && (String.sub m i n = needle || scan (i + 1))
       in
       scan 0)

let () =
  Alcotest.run "cert"
    [
      ( "clean",
        [ Alcotest.test_case "certifies" `Quick test_clean_certifies;
          Alcotest.test_case "universe shape" `Quick test_clean_universe_shape;
          Alcotest.test_case "commute precision beats xdgl" `Quick
            test_commute_precision_beats_xdgl;
          Alcotest.test_case "fsm pass integrity" `Quick
            test_fsm_pass_integrity;
          Alcotest.test_case "runtime recorded" `Quick test_runtime_recorded;
          Alcotest.test_case "json renders" `Quick test_json_renders ] );
      ( "faults",
        [ Alcotest.test_case "all four fail, then clean" `Quick
            test_mutations_fail_then_clean;
          Alcotest.test_case "names roundtrip" `Quick
            test_mutation_names_roundtrip ] );
      ( "registry",
        [ Alcotest.test_case "duplicate rejection" `Quick
            test_register_rejects_duplicates ] );
      ( "protocol-arg",
        [ Alcotest.test_case "unknown protocol" `Quick
            test_parse_unknown_protocol;
          Alcotest.test_case "duplicate configs" `Quick
            test_parse_duplicate_configs;
          Alcotest.test_case "+2pc incompatible" `Quick
            test_parse_two_pc_incompatible ] );
    ]
