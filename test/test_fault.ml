(* Fault-plan machinery and recovery tests: plan semantics (windows, cuts,
   crash schedules), a QCheck property that message duplication and
   jitter-induced reordering leave every global invariant intact, and a
   crash-time sweep under two-phase commit asserting that each in-doubt
   transaction resolves by WAL redo replay. *)

module Sim = Dtx_sim.Sim
module Net = Dtx_net.Net
module Msg = Dtx_net.Msg
module Cluster = Dtx.Cluster
module Site = Dtx.Site
module Wal = Dtx.Wal
module Participant = Dtx.Participant
module Protocol = Dtx_protocol.Protocol
module Workload = Dtx_workload.Workload
module Checker = Dtx_check.Checker
module Fault_plan = Dtx_fault.Fault_plan
module Injector = Dtx_fault.Injector

let checkb = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Plan semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_windows_and_cuts () =
  let w = { Fault_plan.from_ms = 10.0; until_ms = 20.0 } in
  checkb "before" false (Fault_plan.in_window w 9.9);
  checkb "at start" true (Fault_plan.in_window w 10.0);
  checkb "half-open" false (Fault_plan.in_window w 20.0);
  let plan =
    { (Fault_plan.empty ~seed:1 ~horizon_ms:100.0) with
      Fault_plan.partitions =
        [ { p_window = { from_ms = 30.0; until_ms = 40.0 }; p_group = [ 0 ] } ];
      crashes =
        [ { c_site = 2; c_at_ms = 50.0; c_restart_after_ms = Some 10.0 } ]
    }
  in
  (* Partition: severed across the group boundary, both directions, only
     inside the window. *)
  checkb "cut in window" true (Fault_plan.cut plan ~time:35.0 ~src:0 ~dst:1);
  checkb "cut reverse" true (Fault_plan.cut plan ~time:35.0 ~src:1 ~dst:0);
  checkb "same side open" false (Fault_plan.cut plan ~time:35.0 ~src:1 ~dst:2);
  checkb "healed" false (Fault_plan.cut plan ~time:40.0 ~src:0 ~dst:1);
  checkb "local never cut" false (Fault_plan.cut plan ~time:35.0 ~src:0 ~dst:0);
  (* Crash: both endpoints of any link to the down site, until restart. *)
  checkb "up before crash" false (Fault_plan.crashed plan ~time:49.9 ~site:2);
  checkb "down" true (Fault_plan.crashed plan ~time:55.0 ~site:2);
  checkb "restarted" false (Fault_plan.crashed plan ~time:60.0 ~site:2);
  checkb "cut to crashed" true (Fault_plan.cut plan ~time:55.0 ~src:1 ~dst:2);
  checkb "cut from crashed" true (Fault_plan.cut plan ~time:55.0 ~src:2 ~dst:1)

let test_random_plans_self_heal () =
  (* Every generated fault must end inside the horizon, or chaos runs
     could wait forever on a partition that never heals. *)
  for seed = 1 to 200 do
    let p = Fault_plan.random ~seed ~n_sites:4 ~horizon_ms:160.0 in
    List.iter
      (fun (lf : Fault_plan.link_fault) ->
        checkb "link fault heals" true
          (lf.Fault_plan.lf_window.until_ms <= 160.0 *. 0.95))
      p.Fault_plan.link_faults;
    List.iter
      (fun (pa : Fault_plan.partition) ->
        checkb "partition heals" true
          (pa.Fault_plan.p_window.until_ms <= 160.0 *. 0.95))
      p.Fault_plan.partitions;
    List.iter
      (fun (c : Fault_plan.crash) ->
        checkb "crash restarts" true (c.Fault_plan.c_restart_after_ms <> None))
      p.Fault_plan.crashes
  done;
  (* Same seed, same plan — the whole point of scripted chaos. *)
  let a = Fault_plan.random ~seed:42 ~n_sites:4 ~horizon_ms:160.0 in
  let b = Fault_plan.random ~seed:42 ~n_sites:4 ~horizon_ms:160.0 in
  checkb "deterministic" true (a = b)

(* ------------------------------------------------------------------ *)
(* Shared harness: one checked workload run under a fault plan         *)
(* ------------------------------------------------------------------ *)

let checked_run ?mutate_count params plan =
  let checker = Checker.create ~ring:512 () in
  let cluster_ref = ref None in
  let r =
    Workload.run
      ~instrument:(fun cluster ->
        cluster_ref := Some cluster;
        let inj = Injector.install cluster plan in
        Checker.set_link_oracle checker (Some (Injector.link_oracle inj));
        Checker.attach ?mutate:mutate_count checker cluster)
      params
  in
  let cluster =
    match !cluster_ref with
    | Some c -> c
    | None -> Alcotest.fail "instrument hook never ran"
  in
  (r, cluster, Checker.finish checker)

let fail_on_violations label vs =
  match vs with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "%s: %d violation(s), first: %a" label (List.length vs)
      Checker.pp_violation v

(* ------------------------------------------------------------------ *)
(* Duplication + reordering property                                   *)
(* ------------------------------------------------------------------ *)

(* Heavy duplication plus jittered delivery (copies overtake each other)
   must be absorbed by the (txn, seq) reply cache and the per-site pending
   sets: no double-apply, no lock imbalance, the committed history stays
   serializable — under both one-phase and 2PC. *)
let prop_dup_reorder_invariants_hold =
  QCheck.Test.make ~name:"duplication + reordering preserve invariants"
    ~count:20
    QCheck.(quad (int_bound 1000) (int_bound 1000) (int_range 20 80) (int_bound 5))
    (fun (plan_seed, wl_seed, dup_pct, jitter) ->
      let plan =
        { (Fault_plan.empty ~seed:plan_seed ~horizon_ms:300.0) with
          Fault_plan.link_faults =
            [ { lf_window = { from_ms = 0.0; until_ms = 280.0 };
                lf_link = Fault_plan.any_link;
                lf_kinds = [];
                lf_drop_pct = 0;
                lf_dup_pct = dup_pct;
                lf_delay_ms = 0.3;
                lf_jitter_ms = 0.5 +. float_of_int jitter }
            ]
        }
      in
      List.for_all
        (fun two_phase ->
          let params =
            { Workload.default_params with
              seed = wl_seed; n_sites = 3; n_clients = 4;
              txns_per_client = 3; ops_per_txn = 4; update_txn_pct = 50;
              base_size_mb = 2.0; two_phase_commit = two_phase;
              retransmit_ms = Some 5.0; txn_timeout_ms = Some 1000.0 }
          in
          let r, _, vs = checked_run params plan in
          if vs <> [] then
            QCheck.Test.fail_reportf "%s: %d violation(s), first: %a"
              (if two_phase then "2pc" else "one-phase")
              (List.length vs) Checker.pp_violation (List.hd vs);
          (* Duplication must not manufacture or lose transactions. *)
          r.Workload.committed + r.Workload.aborted + r.Workload.failed
          = r.Workload.planned_txns)
        [ false; true ])

(* ------------------------------------------------------------------ *)
(* Crash at every commit phase (2PC + WAL replay)                      *)
(* ------------------------------------------------------------------ *)

(* Crash one site at t for a dense sweep of t covering execution, prepare,
   commit and post-commit windows. Every run must stay violation-free
   (the checker's recovery invariants include "every prepared transaction
   resolves" and "no committed write lost"), every WAL must drain its
   in-doubt set, and across the sweep at least one in-doubt transaction
   must resolve to COMMIT via redo replay — i.e. the sweep really does
   catch transactions inside the prepare/commit window, not just before
   or after it. *)
let test_crash_sweep_two_phase () =
  let resolved_commit = ref 0 in
  let resolved_abort = ref 0 in
  let recoveries = ref 0 in
  let mutate ev =
    (match ev with
     | Checker.Part { ev = Participant.Recovery_begun { in_doubt }; _ } ->
       recoveries := !recoveries + List.length in_doubt
     | Checker.Part { ev = Participant.Recovery_resolved { committed; _ }; _ } ->
       incr (if committed then resolved_commit else resolved_abort)
     | _ -> ());
    Some ev
  in
  let t = ref 1.0 in
  while !t <= 25.0 do
    let plan =
      { (Fault_plan.empty ~seed:0 ~horizon_ms:100.0) with
        Fault_plan.crashes =
          [ { c_site = 1; c_at_ms = !t; c_restart_after_ms = Some 8.0 } ]
      }
    in
    let params =
      { Workload.default_params with
        seed = 11; protocol = Protocol.xdgl; n_sites = 3; n_clients = 4;
        txns_per_client = 3; ops_per_txn = 3; update_txn_pct = 80;
        base_size_mb = 2.0; two_phase_commit = true;
        retransmit_ms = Some 3.0; txn_timeout_ms = Some 500.0 }
    in
    let label = Printf.sprintf "crash at %.1fms" !t in
    let r, cluster, vs = checked_run ~mutate_count:mutate params plan in
    fail_on_violations label vs;
    checkb (label ^ ": some progress") true (r.Workload.committed > 0);
    Array.iter
      (fun (s : Site.t) ->
        check_int
          (Printf.sprintf "%s: site %d WAL drained" label s.Site.id)
          0
          (List.length (Wal.in_doubt s.Site.wal)))
      (Cluster.sites cluster);
    t := !t +. 0.5
  done;
  checkb "sweep hit the in-doubt window" true (!recoveries > 0);
  checkb "some transaction resolved by redo replay" true (!resolved_commit > 0)

(* A crash that never restarts must not deadlock the rest of the cluster:
   the retransmission give-up and transaction-timeout valves abort the
   stranded transactions and the run still drains cleanly. *)
let test_crash_without_restart_drains () =
  let plan =
    { (Fault_plan.empty ~seed:0 ~horizon_ms:100.0) with
      Fault_plan.crashes =
        [ { c_site = 2; c_at_ms = 6.0; c_restart_after_ms = None } ]
    }
  in
  let params =
    { Workload.default_params with
      seed = 3; n_sites = 3; n_clients = 4; txns_per_client = 3;
      ops_per_txn = 3; update_txn_pct = 60; base_size_mb = 2.0;
      two_phase_commit = true; retransmit_ms = Some 2.0;
      txn_timeout_ms = Some 200.0 }
  in
  let r, _, vs = checked_run params plan in
  fail_on_violations "no-restart crash" vs;
  check_int "all transactions accounted for" r.Workload.planned_txns
    (r.Workload.committed + r.Workload.aborted + r.Workload.failed)

let () =
  Alcotest.run "fault"
    [ ( "plans",
        [ Alcotest.test_case "windows and cuts" `Quick test_windows_and_cuts;
          Alcotest.test_case "random plans self-heal" `Quick
            test_random_plans_self_heal ] );
      ( "dup+reorder",
        [ QCheck_alcotest.to_alcotest prop_dup_reorder_invariants_hold ] );
      ( "crash recovery",
        [ Alcotest.test_case "crash at every commit phase" `Quick
            test_crash_sweep_two_phase;
          Alcotest.test_case "crash without restart drains" `Quick
            test_crash_without_restart_drains ] ) ]
