(* Tests for the strong DataGuide: construction, incremental maintenance,
   structural matching, pruning — plus properties over random documents. *)

module Dg = Dtx_dataguide.Dataguide
module Node = Dtx_xml.Node
module Doc = Dtx_xml.Doc
module Xml_parser = Dtx_xml.Parser
module P = Dtx_xpath.Parser
module Generator = Dtx_xmark.Generator

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let sample () =
  Xml_parser.parse ~name:"d"
    "<people>\n\
     <person id=\"1\"><name>Ana</name></person>\n\
     <person id=\"2\"><name>Bia</name><city>Natal</city></person>\n\
     </people>"

let test_build_dedups_paths () =
  let dg = Dg.build (sample ()) in
  (* Distinct label paths: people, person, @id, name, city = 5. *)
  check "five dataguide nodes" 5 (Dg.size dg);
  match Dg.find_path dg [ "people"; "person" ] with
  | Some n -> check "two persons map here" 2 n.Dg.target_count
  | None -> Alcotest.fail "person path missing"

let test_validate_after_build () =
  let doc = sample () in
  let dg = Dg.build doc in
  checkb "valid" true (Dg.validate dg doc = Ok ())

let test_find_and_ensure () =
  let dg = Dg.build (sample ()) in
  checkb "missing path" true (Dg.find_path dg [ "people"; "ghost" ] = None);
  checkb "wrong root" true (Dg.find_path dg [ "nope" ] = None);
  let n = Dg.ensure_path dg [ "people"; "ghost" ] in
  check "created with zero count" 0 n.Dg.target_count;
  checkb "now found" true (Dg.find_path dg [ "people"; "ghost" ] <> None);
  Alcotest.check_raises "ensure with wrong root"
    (Invalid_argument "Dataguide.ensure_path: root label bad <> people")
    (fun () -> ignore (Dg.ensure_path dg [ "bad" ]))

let test_add_remove_instance () =
  let dg = Dg.build (sample ()) in
  let n = Dg.add_instance dg [ "people"; "person" ] in
  check "count bumped" 3 n.Dg.target_count;
  Dg.remove_instance dg [ "people"; "person" ];
  check "count back" 2 n.Dg.target_count;
  Alcotest.check_raises "remove unknown"
    (Invalid_argument "Dataguide.remove_instance: unknown path people/ghost2")
    (fun () -> Dg.remove_instance dg [ "people"; "ghost2" ])

let test_subtree_maintenance () =
  let doc = sample () in
  let dg = Dg.build doc in
  (* Graft a new person with a new sub-path. *)
  let person = Doc.fresh_node doc ~label:"person" () in
  let email = Doc.fresh_node doc ~label:"email" ~text:"x@y" () in
  Node.add_child person email;
  Node.add_child doc.Doc.root person;
  Dg.add_subtree dg person;
  checkb "still valid" true (Dg.validate dg doc = Ok ());
  checkb "email path exists" true
    (Dg.find_path dg [ "people"; "person"; "email" ] <> None);
  (* Now remove it again. *)
  Dg.remove_subtree dg person;
  ignore (Node.detach person);
  Doc.unregister_subtree doc person;
  checkb "valid after removal" true (Dg.validate dg doc = Ok ())

let test_ancestors_and_label_path () =
  let dg = Dg.build (sample ()) in
  match Dg.find_path dg [ "people"; "person"; "name" ] with
  | None -> Alcotest.fail "name path missing"
  | Some n ->
    Alcotest.(check (list string)) "label path" [ "people"; "person"; "name" ]
      (Dg.label_path n);
    check "two ancestors" 2 (List.length (Dg.ancestors n));
    Alcotest.(check string) "nearest first" "person"
      (List.hd (Dg.ancestors n)).Dg.label

let test_match_path () =
  let dg = Dg.build (sample ()) in
  let m s = List.length (Dg.match_path dg (P.parse s)) in
  check "exact" 1 (m "/people/person/name");
  check "wildcard" 1 (m "/people/*/name");
  check "descendant" 1 (m "//name");
  check "descendant multi (wildcard skips attrs)" 3 (m "//person//*" + m "//person");
  check "predicates ignored structurally" 1 (m "/people/person[@id = \"1\"]");
  check "no match" 0 (m "/people/order")

let test_match_root () =
  let dg = Dg.build (sample ()) in
  check "root by absolute path" 1 (List.length (Dg.match_path dg (P.parse "/people")));
  check "root by //" 1 (List.length (Dg.match_path dg (P.parse "//people")))

let test_version_counter () =
  let dg = Dg.build (sample ()) in
  let v0 = Dg.version dg in
  (* Read-only operations leave the version alone. *)
  ignore (Dg.find_path dg [ "people"; "person" ]);
  ignore (Dg.match_path dg (P.parse "/people/person/name"));
  check "reads do not bump" v0 (Dg.version dg);
  ignore (Dg.add_instance dg [ "people"; "person" ]);
  checkb "add_instance bumps" true (Dg.version dg > v0);
  let v1 = Dg.version dg in
  Dg.remove_instance dg [ "people"; "person" ];
  checkb "remove_instance bumps" true (Dg.version dg > v1);
  let v2 = Dg.version dg in
  ignore (Dg.ensure_path dg [ "people"; "brand_new" ]);
  checkb "node creation bumps" true (Dg.version dg > v2);
  let v3 = Dg.version dg in
  ignore (Dg.ensure_path dg [ "people"; "brand_new" ]);
  check "ensure of existing path does not bump" v3 (Dg.version dg);
  ignore (Dg.prune dg);
  checkb "prune of empty husks bumps" true (Dg.version dg > v3)

let test_prune () =
  let dg = Dg.build (sample ()) in
  ignore (Dg.ensure_path dg [ "people"; "a"; "b"; "c" ]);
  let before = Dg.size dg in
  let removed = Dg.prune dg in
  check "chain pruned" 3 removed;
  check "size restored" (before - 3) (Dg.size dg)

let test_descendants_or_self () =
  let dg = Dg.build (sample ()) in
  check "all nodes from root" (Dg.size dg)
    (List.length (Dg.descendants_or_self dg.Dg.root))

(* --- properties over random/XMark documents ----------------------------- *)

let prop_dataguide_size_bounded =
  QCheck.Test.make ~name:"dataguide no bigger than document" ~count:20
    QCheck.(int_range 200 2000)
    (fun nodes ->
      let doc = Generator.generate (Generator.params_of_nodes nodes) in
      let dg = Dg.build doc in
      Dg.size dg <= Doc.size doc)

let prop_dataguide_valid_on_xmark =
  QCheck.Test.make ~name:"dataguide validates on generated documents" ~count:10
    QCheck.(int_range 200 1500)
    (fun nodes ->
      let doc = Generator.generate (Generator.params_of_nodes nodes) in
      Dg.validate (Dg.build doc) doc = Ok ())

let prop_every_doc_path_matches =
  QCheck.Test.make ~name:"every document label path has a dataguide node"
    ~count:10
    QCheck.(int_range 200 1000)
    (fun nodes ->
      let doc = Generator.generate (Generator.params_of_nodes nodes) in
      let dg = Dg.build doc in
      let ok = ref true in
      Node.iter
        (fun n ->
          match Dg.find_path dg (Node.label_path n) with
          | Some g when g.Dg.target_count > 0 -> ()
          | _ -> ok := false)
        doc.Doc.root;
      !ok)

let prop_compression_on_xmark =
  (* The whole point of DataGuide locking: on regular data the summary is
     far smaller than the document. *)
  QCheck.Test.make ~name:"xmark dataguide compresses at least 5x" ~count:5
    QCheck.(int_range 2000 6000)
    (fun nodes ->
      let doc = Generator.generate (Generator.params_of_nodes nodes) in
      let dg = Dg.build doc in
      Dg.size dg * 5 <= Doc.size doc)

let () =
  Alcotest.run "dataguide"
    [ ( "construction",
        [ Alcotest.test_case "dedups label paths" `Quick test_build_dedups_paths;
          Alcotest.test_case "validate" `Quick test_validate_after_build;
          Alcotest.test_case "find/ensure" `Quick test_find_and_ensure ] );
      ( "maintenance",
        [ Alcotest.test_case "add/remove instance" `Quick test_add_remove_instance;
          Alcotest.test_case "subtree add/remove" `Quick test_subtree_maintenance;
          Alcotest.test_case "prune" `Quick test_prune;
          Alcotest.test_case "version counter" `Quick test_version_counter ] );
      ( "matching",
        [ Alcotest.test_case "ancestors/label path" `Quick test_ancestors_and_label_path;
          Alcotest.test_case "match_path" `Quick test_match_path;
          Alcotest.test_case "match root" `Quick test_match_root;
          Alcotest.test_case "descendants_or_self" `Quick test_descendants_or_self ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_dataguide_size_bounded;
          QCheck_alcotest.to_alcotest prop_dataguide_valid_on_xmark;
          QCheck_alcotest.to_alcotest prop_every_doc_path_matches;
          QCheck_alcotest.to_alcotest prop_compression_on_xmark ] ) ]
