(* Tests for Dtx_explore: the static commutativity analysis (QCheck-validated
   against actual operation execution), the sleep-set schedule explorer on
   the pinned scenarios, its reduction factor against naive enumeration, and
   the seeded-bug coverage that random schedules cannot provide. *)

module Sim = Dtx_sim.Sim
module Net = Dtx_net.Net
module Cluster = Dtx.Cluster
module Txn = Dtx_txn.Txn
module Op = Dtx_update.Op
module Exec = Dtx_update.Exec
module Protocol = Dtx_protocol.Protocol
module Allocation = Dtx_frag.Allocation
module Xml_parser = Dtx_xml.Parser
module Printer = Dtx_xml.Printer
module Commute = Dtx_explore.Commute
module Explore = Dtx_explore.Explore

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- the commutativity analyzer ------------------------------------------ *)

let pool_doc = "<r><a><x>hello</x><y>1</y></a><b><z>2</z></b></r>"

let op src =
  match Op.parse src with
  | Ok o -> o
  | Error e -> Alcotest.failf "bad op %S: %s" src e

(* A pool rich enough to exercise every rule: reads, writes, structure
   changes, and the INSERT AFTER/BEFORE positional reads the virtual-ST
   closure exists for. *)
let pool =
  [| "QUERY /r/a";
     "QUERY /r/b/z";
     "CHANGE /r/a/x TO \"v1\"";
     "CHANGE /r/a/y TO \"v2\"";
     "CHANGE /r/b/z TO \"v3\"";
     "REMOVE /r/a/y";
     "REMOVE /r/b";
     "RENAME /r/a/x TO w";
     "INSERT INTO /r/b <n>9</n>";
     "INSERT AFTER /r/a/x <m>8</m>";
     "INSERT BEFORE /r/b/z <k>7</k>";
     "INSERT AFTER /r/a/y <m2>6</m2>" |]

let analyzer () = Commute.create ~protocol:Protocol.xdgl ~docs:[ ("D", pool_doc) ]

let decide t i j = Commute.decide t ("D", op pool.(i)) ("D", op pool.(j))

let test_decide_expectations () =
  let t = analyzer () in
  let cross =
    Commute.decide t ("D", op "CHANGE /r/a/x TO \"v\"") ("E", op "REMOVE /r/b")
  in
  checkb "different documents commute" true (cross = Commute.Commutes);
  checkb "two queries commute" true (decide t 0 1 = Commute.Commutes);
  checkb "query vs change of same subtree conflicts" true
    (decide t 0 2 = Commute.Conflicts);
  checkb "disjoint-subtree writes commute" true (decide t 2 4 = Commute.Commutes);
  (* INSERT AFTER /r/a/x reads x's position; the rules lock only the connect
     node, the analyzer's virtual ST must still see RENAME's XT on x. *)
  checkb "insert-after vs rename of its target conflicts" true
    (decide t 9 7 = Commute.Conflicts);
  (* INSERT INTO's own virtual position read on the connect node collides
     with the sibling insert's SB lock there: conservatively Conflicts. *)
  checkb "insert-into vs insert-before same parent conflicts" true
    (decide t 8 10 = Commute.Conflicts);
  (* Two INSERT AFTERs with different targets under one parent: mutually
     compatible SA locks, no footprint conflict, but sibling order depends
     on who goes first. *)
  checkb "order-sensitive insert pair is unknown" true
    (decide t 9 11 = Commute.Unknown);
  checkb "unknown is not independence" false (Commute.independent Commute.Unknown)

let test_self_check () =
  let t = analyzer () in
  let ops = Array.map (fun src -> ("D", op src)) pool in
  (match Commute.self_check t ops with
   | Ok () -> ()
   | Error msgs -> Alcotest.failf "self-check: %s" (String.concat "; " msgs));
  let m = Commute.matrix t ops in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v -> checkb "matrix symmetric" true (v = m.(j).(i)))
        row)
    m

(* Soundness against the executable semantics: whenever the static verdict
   is Commutes, applying the two operations in either order on fresh copies
   of the document must yield byte-identical results. *)
let apply_both i j =
  let doc = Xml_parser.parse ~name:"D" pool_doc in
  (match Exec.apply doc (op pool.(i)) with Ok _ | Error _ -> ());
  (match Exec.apply doc (op pool.(j)) with Ok _ | Error _ -> ());
  Printer.to_string doc

let prop_commutes_is_sound =
  QCheck.Test.make ~name:"Commutes implies order-insensitive execution"
    ~count:300
    QCheck.(pair (int_bound (Array.length pool - 1))
              (int_bound (Array.length pool - 1)))
    (fun (i, j) ->
      let t = analyzer () in
      match decide t i j with
      | Commute.Commutes -> String.equal (apply_both i j) (apply_both j i)
      | Commute.Conflicts | Commute.Unknown -> true)

(* --- exhaustive exploration ---------------------------------------------- *)

let explore ?(mutate = None) ?(naive = false) ?(two_phase = false)
    ?(protocol = Protocol.xdgl) scen =
  Explore.explore
    ~config:
      { Explore.default_config with
        Explore.protocol; two_phase; naive; mutate }
    scen

let assert_clean label (o : Explore.outcome) =
  checkb (label ^ ": commute analysis sound") true (o.Explore.o_unsound = []);
  checkb (label ^ ": not truncated") false o.Explore.o_truncated;
  checkb (label ^ ": explored some schedules") true (o.Explore.o_explored > 0);
  checki (label ^ ": zero violations") 0 o.Explore.o_violations

let test_ref_exhaustive_xdgl () =
  assert_clean "xdgl" (explore Explore.reference)

let test_ref_exhaustive_node2pl () =
  assert_clean "node2pl" (explore ~protocol:Protocol.node2pl Explore.reference)

let test_ref_exhaustive_2pc () =
  assert_clean "xdgl+2pc" (explore ~two_phase:true Explore.reference)

(* The three pinned scenarios, exhaustively explored under the optimistic
   Commute config: every schedule it accepts — lock-free reads, downgraded
   writers, validation aborts — must stay checker-clean, and the disjoint
   scenario must still collapse to a single schedule. *)
let test_ref_exhaustive_commute () =
  assert_clean "commute" (explore ~protocol:Protocol.commute Explore.reference)

let test_ref_exhaustive_commute_2pc () =
  assert_clean "commute+2pc"
    (explore ~protocol:Protocol.commute ~two_phase:true Explore.reference)

let test_deadlock_exhaustive_commute () =
  assert_clean "commute deadlock"
    (explore ~protocol:Protocol.commute Explore.deadlock)

let test_disjoint_collapses_commute () =
  let o = explore ~protocol:Protocol.commute Explore.disjoint in
  assert_clean "commute disjoint" o;
  checki "single schedule" 1 o.Explore.o_explored

let test_deadlock_exhaustive () =
  (* Every interleaving either serializes or deadlocks; the oracle checks
     the detector recovers and always kills the correct victim. *)
  assert_clean "deadlock" (explore Explore.deadlock)

let test_reduction_factor () =
  let dpor = explore Explore.reference in
  let naive = explore ~naive:true Explore.reference in
  assert_clean "dpor" dpor;
  assert_clean "naive" naive;
  checkb
    (Printf.sprintf "reduction >= 2x (naive %d vs dpor %d)"
       naive.Explore.o_explored dpor.Explore.o_explored)
    true
    (naive.Explore.o_explored >= 2 * dpor.Explore.o_explored)

let test_disjoint_collapses () =
  (* Fully commuting transactions: sleep sets must collapse the whole
     delivery-order space to a single representative schedule. *)
  let o = explore Explore.disjoint in
  assert_clean "disjoint" o;
  checki "single schedule" 1 o.Explore.o_explored;
  checkb "pruning happened" true (o.Explore.o_pruned > 0)

(* --- seeded-bug coverage -------------------------------------------------- *)

let test_skip_release_found_by_exploration () =
  let o = explore ~mutate:(Some Explore.Skip_release) Explore.reference in
  checkb "explorer finds the hidden release" true (o.Explore.o_violations > 0);
  checkb "a violating schedule is reported" true (o.Explore.o_violating <> []);
  let vs = List.hd o.Explore.o_violating in
  checkb "violating schedule carries its decision path" true
    (vs.Explore.vs_path <> [])

let test_skip_release_missed_by_random () =
  (* The bug needs the last transaction's local shipment postponed past its
     rival's full remote round trip — bounded jitter on remote links can
     never reorder a zero-delay local delivery that far. *)
  let cfg =
    { Explore.default_config with Explore.mutate = Some Explore.Skip_release }
  in
  let seeds = List.init 50 (fun i -> i + 1) in
  let runs = Explore.random_runs Explore.reference cfg ~seeds in
  checki "50 seeds" 50 (List.length runs);
  List.iter
    (fun (seed, vs) ->
      checki (Printf.sprintf "seed %d sees no violation" seed) 0
        (List.length vs))
    runs

let test_commit_reorder_found () =
  let o =
    explore ~two_phase:true ~mutate:(Some Explore.Commit_reorder)
      Explore.reference
  in
  checkb "2pc-order violation found" true (o.Explore.o_violations > 0)

let test_compat_flip_found () =
  let o = explore ~mutate:(Some Explore.Compat_flip) Explore.reference in
  checkb "lattice violation found" true (o.Explore.o_violations > 0)

(* --- deadlock victim tie-break ------------------------------------------- *)

let test_victim_timestamp_tie () =
  (* Both transactions are submitted at virtual time 0.0 and deadlock by
     acquiring the two documents in opposite orders. With equal admission
     timestamps the newest-transaction rule must fall back to the larger
     txn id — deterministically killing t2, never t1. *)
  let sim = Sim.create () in
  let net = Net.of_config ~sim Net.Config.lan in
  let placements =
    [ { Allocation.doc = Xml_parser.parse ~name:"A" "<r><a><x>0</x></a></r>";
        sites = [ 0 ] };
      { Allocation.doc = Xml_parser.parse ~name:"B" "<r><b><y>0</y></b></r>";
        sites = [ 1 ] } ]
  in
  let config =
    { (Cluster.default_config ~protocol:Protocol.xdgl ()) with
      deadlock_period_ms = 5.0 }
  in
  let cluster = Cluster.create ~sim ~net ~n_sites:2 config ~placements in
  Cluster.shutdown_when_idle cluster;
  let statuses = Hashtbl.create 2 in
  let submit ~coordinator ops =
    Cluster.submit cluster ~client:0 ~coordinator ~ops
      ~on_finish:(fun txn ->
        Hashtbl.replace statuses txn.Txn.id txn.Txn.status)
    |> ignore
  in
  let ch doc path = (doc, op (Printf.sprintf "CHANGE %s TO \"9\"" path)) in
  submit ~coordinator:0 [ ch "A" "/r/a/x"; ch "B" "/r/b/y" ];
  submit ~coordinator:1 [ ch "B" "/r/b/y"; ch "A" "/r/a/x" ];
  Sim.run sim;
  checkb "t1 committed" true
    (Hashtbl.find_opt statuses 1 = Some Txn.Committed);
  checkb "t2 aborted (tie broken by id)" true
    (Hashtbl.find_opt statuses 2 = Some Txn.Aborted)

(* --- registration --------------------------------------------------------- *)

let () =
  Alcotest.run "explore"
    [ ( "commute",
        [ Alcotest.test_case "verdict expectations" `Quick
            test_decide_expectations;
          Alcotest.test_case "self-check and symmetry" `Quick test_self_check;
          QCheck_alcotest.to_alcotest prop_commutes_is_sound ] );
      ( "explore",
        [ Alcotest.test_case "ref exhaustive (XDGL)" `Quick
            test_ref_exhaustive_xdgl;
          Alcotest.test_case "ref exhaustive (Node2PL)" `Quick
            test_ref_exhaustive_node2pl;
          Alcotest.test_case "ref exhaustive (XDGL+2PC)" `Quick
            test_ref_exhaustive_2pc;
          Alcotest.test_case "deadlock scenario exhaustive" `Quick
            test_deadlock_exhaustive;
          Alcotest.test_case "DPOR reduction >= 2x" `Quick
            test_reduction_factor;
          Alcotest.test_case "disjoint collapses to one schedule" `Quick
            test_disjoint_collapses;
          Alcotest.test_case "ref exhaustive (Commute)" `Quick
            test_ref_exhaustive_commute;
          Alcotest.test_case "ref exhaustive (Commute+2PC)" `Quick
            test_ref_exhaustive_commute_2pc;
          Alcotest.test_case "deadlock exhaustive (Commute)" `Quick
            test_deadlock_exhaustive_commute;
          Alcotest.test_case "disjoint collapses (Commute)" `Quick
            test_disjoint_collapses_commute ] );
      ( "mutations",
        [ Alcotest.test_case "skip-release found by exploration" `Quick
            test_skip_release_found_by_exploration;
          Alcotest.test_case "skip-release missed by 50 random seeds" `Quick
            test_skip_release_missed_by_random;
          Alcotest.test_case "commit-reorder found" `Quick
            test_commit_reorder_found;
          Alcotest.test_case "compat-flip found" `Quick test_compat_flip_found ] );
      ( "victim",
        [ Alcotest.test_case "equal-timestamp tie broken by id" `Quick
            test_victim_timestamp_tie ] ) ]
