(* Tests for lock modes (the XDGL compatibility matrix), the lock table and
   the wait-for graph. *)

module Mode = Dtx_locks.Mode
module Table = Dtx_locks.Table
module Wfg = Dtx_locks.Wfg

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Mode --------------------------------------------------------------- *)

let test_matrix_symmetric () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          checkb
            (Printf.sprintf "compat %s/%s symmetric" (Mode.to_string a)
               (Mode.to_string b))
            (Mode.compatible a b) (Mode.compatible b a))
        Mode.all)
    Mode.all

let test_exclusive_conflicts_with_all () =
  List.iter
    (fun m ->
      checkb ("X vs " ^ Mode.to_string m) false (Mode.compatible Mode.X m);
      checkb ("XT vs " ^ Mode.to_string m) false (Mode.compatible Mode.XT m))
    Mode.all

let test_paper_key_incompatibility () =
  (* The Fig.-6 scenario hinges on IX vs ST. *)
  checkb "IX/ST conflict" false (Mode.compatible Mode.IX Mode.ST);
  checkb "IS/ST ok" true (Mode.compatible Mode.IS Mode.ST);
  checkb "IS/IX ok" true (Mode.compatible Mode.IS Mode.IX)

let test_shared_family_compatible () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          checkb
            (Printf.sprintf "%s/%s shared-compatible" (Mode.to_string a)
               (Mode.to_string b))
            true (Mode.compatible a b))
        [ Mode.IS; Mode.SI; Mode.SA; Mode.SB ])
    [ Mode.IS; Mode.IX; Mode.SI; Mode.SA; Mode.SB ]

let test_insert_shared_vs_tree () =
  (* Insertion-shared locks update the subtree an ST protects. *)
  checkb "SI/ST conflict" false (Mode.compatible Mode.SI Mode.ST);
  checkb "SA/ST conflict" false (Mode.compatible Mode.SA Mode.ST);
  checkb "SB/ST conflict" false (Mode.compatible Mode.SB Mode.ST);
  checkb "ST/ST ok" true (Mode.compatible Mode.ST Mode.ST)

let test_intention_for () =
  checkb "X -> IX" true (Mode.intention_for Mode.X = Mode.IX);
  checkb "XT -> IX" true (Mode.intention_for Mode.XT = Mode.IX);
  checkb "ST -> IS" true (Mode.intention_for Mode.ST = Mode.IS);
  checkb "SI -> IS" true (Mode.intention_for Mode.SI = Mode.IS);
  checkb "IS -> IS" true (Mode.intention_for Mode.IS = Mode.IS);
  checkb "IX -> IX" true (Mode.intention_for Mode.IX = Mode.IX)

let test_conflict_mask_matches_compat () =
  (* The bitmask encoding must agree with the pattern-match matrix on every
     ordered pair — this is what lets the table answer compatibility with
     one AND. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let via_mask = Mode.conflict_mask a land Mode.bit b <> 0 in
          checkb
            (Printf.sprintf "mask %s/%s" (Mode.to_string a) (Mode.to_string b))
            (not (Mode.compatible a b)) via_mask;
          checkb
            (Printf.sprintf "mask_compatible %s/%s" (Mode.to_string a)
               (Mode.to_string b))
            (Mode.compatible a b)
            (Mode.mask_compatible a ~held_mask:(Mode.bit b)))
        Mode.all)
    Mode.all

let test_conflict_mask_symmetric () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          checkb
            (Printf.sprintf "mask symmetry %s/%s" (Mode.to_string a)
               (Mode.to_string b))
            (Mode.conflict_mask a land Mode.bit b <> 0)
            (Mode.conflict_mask b land Mode.bit a <> 0))
        Mode.all)
    Mode.all

let test_mode_index_bit () =
  List.iter
    (fun m ->
      checkb "of_index inverse" true (Mode.of_index (Mode.index m) = m);
      check "bit is power of two" (1 lsl Mode.index m) (Mode.bit m))
    Mode.all;
  (* Indexes are dense and distinct. *)
  Alcotest.(check (list int))
    "dense indexes"
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (List.sort compare (List.map Mode.index Mode.all))

let test_mask_union_semantics () =
  (* mask_compatible over a union mask == compatible with every member. *)
  let held = [ Mode.IS; Mode.SI; Mode.IX ] in
  let mask = List.fold_left (fun m h -> m lor Mode.bit h) 0 held in
  List.iter
    (fun m ->
      checkb
        (Printf.sprintf "union semantics %s" (Mode.to_string m))
        (List.for_all (fun h -> Mode.compatible h m) held)
        (Mode.mask_compatible m ~held_mask:mask))
    Mode.all

let test_mode_strings () =
  List.iter
    (fun m ->
      match Mode.of_string (Mode.to_string m) with
      | Some m' -> checkb "roundtrip" true (m = m')
      | None -> Alcotest.fail "of_string failed")
    Mode.all;
  checkb "unknown" true (Mode.of_string "ZZ" = None)

(* --- Table --------------------------------------------------------------- *)

let r doc node = Table.resource doc node

let test_resource_accessors () =
  let a = Table.resource "docA" 17 in
  Alcotest.(check string) "doc" "docA" (Table.resource_doc a);
  check "node" 17 (Table.resource_node a);
  checkb "no value" true (Table.resource_value a = None);
  let v = Table.value_resource "docA" 17 "42" in
  Alcotest.(check string) "vdoc" "docA" (Table.resource_doc v);
  check "vnode" 17 (Table.resource_node v);
  checkb "value" true (Table.resource_value v = Some "42");
  checkb "value resource distinct" true (Table.compare_resource a v <> 0);
  checkb "same triple same key" true
    (Table.compare_resource v (Table.value_resource "docA" 17 "42") = 0);
  checkb "other value distinct" true
    (Table.compare_resource v (Table.value_resource "docA" 17 "43") <> 0);
  check "node id bound rejected" 1
    (try ignore (Table.resource "d" (1 lsl 28)); 0
     with Invalid_argument _ -> 1)

let test_dedup_requests () =
  let reqs =
    [ (r "d" 2, Mode.IS); (r "d" 1, Mode.ST); (r "d" 2, Mode.IS);
      (r "d" 1, Mode.X); (r "d" 1, Mode.ST) ]
  in
  let deduped = Table.dedup_requests reqs in
  check "three distinct requests" 3 (List.length deduped);
  checkb "sorted by resource" true
    (deduped
     |> List.map (fun (r, _) -> Table.resource_node r)
     |> fun l -> List.sort compare l = l);
  List.iter
    (fun req -> checkb "kept" true (List.mem req deduped))
    [ (r "d" 2, Mode.IS); (r "d" 1, Mode.ST); (r "d" 1, Mode.X) ]

let test_acquire_release () =
  let t = Table.create () in
  (match Table.acquire_all t ~txn:1 [ (r "d" 1, Mode.ST); (r "d" 2, Mode.IS) ] with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "should grant");
  check "grants" 2 (Table.lock_count t);
  check "holders of 1" 1 (List.length (Table.holders t (r "d" 1)));
  let freed = Table.release_txn t ~txn:1 in
  check "freed resources" 2 (List.length freed);
  check "empty" 0 (Table.lock_count t)

let test_conflict_reported () =
  let t = Table.create () in
  ignore (Table.acquire_all t ~txn:1 [ (r "d" 1, Mode.ST) ]);
  (match Table.acquire_all t ~txn:2 [ (r "d" 1, Mode.IX) ] with
   | Error [ 1 ] -> ()
   | Error l -> Alcotest.failf "wrong blockers (%d)" (List.length l)
   | Ok () -> Alcotest.fail "should conflict");
  (* All-or-nothing: the failed request must leave no grants behind. *)
  check "txn 2 holds nothing" 0 (List.length (Table.locks_of t ~txn:2))

let test_all_or_nothing () =
  let t = Table.create () in
  ignore (Table.acquire_all t ~txn:1 [ (r "d" 5, Mode.X) ]);
  (match
     Table.acquire_all t ~txn:2 [ (r "d" 4, Mode.IS); (r "d" 5, Mode.IS) ]
   with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "should conflict on node 5");
  checkb "node 4 untouched" true (Table.holders t (r "d" 4) = [])

let test_own_locks_never_conflict () =
  let t = Table.create () in
  ignore (Table.acquire_all t ~txn:1 [ (r "d" 1, Mode.ST) ]);
  (match Table.acquire_all t ~txn:1 [ (r "d" 1, Mode.X) ] with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "self-upgrade must succeed");
  checkb "holds both modes" true
    (Table.txn_holds t ~txn:1 (r "d" 1) Mode.ST
     && Table.txn_holds t ~txn:1 (r "d" 1) Mode.X)

let test_refcounted_grants () =
  let t = Table.create () in
  ignore (Table.acquire_all t ~txn:1 [ (r "d" 1, Mode.IS) ]);
  ignore (Table.acquire_all t ~txn:1 [ (r "d" 1, Mode.IS) ]);
  check "two grants" 2 (Table.lock_count t);
  Table.release_request t ~txn:1 [ (r "d" 1, Mode.IS) ];
  checkb "still held" true (Table.txn_holds t ~txn:1 (r "d" 1) Mode.IS);
  Table.release_request t ~txn:1 [ (r "d" 1, Mode.IS) ];
  checkb "now gone" false (Table.txn_holds t ~txn:1 (r "d" 1) Mode.IS);
  check "empty" 0 (Table.lock_count t)

(* Regression: releasing a transaction must be idempotent, and undoing a
   grant down to zero must leave no stale per-transaction bookkeeping — a
   later [release_txn] must not touch entries that now belong to someone
   else. *)
let test_release_txn_idempotent () =
  let t = Table.create () in
  ignore (Table.acquire_all t ~txn:1 [ (r "d" 1, Mode.IS) ]);
  (* Full undo: txn 1 no longer holds anything on d#1. *)
  Table.release_request t ~txn:1 [ (r "d" 1, Mode.IS) ];
  check "nothing held after undo" 0 (List.length (Table.locks_of t ~txn:1));
  (* The resource is free; another transaction takes an exclusive lock. *)
  (match Table.acquire_all t ~txn:2 [ (r "d" 1, Mode.X) ] with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "resource should be free after undo");
  (* End-of-transaction release of txn 1 must be a no-op: no freed
     resources reported (no spurious wakes) and txn 2's grant intact. *)
  check "release after undo frees nothing" 0
    (List.length (Table.release_txn t ~txn:1));
  checkb "txn 2 keeps its lock" true (Table.txn_holds t ~txn:2 (r "d" 1) Mode.X);
  (match Table.acquire_all t ~txn:3 [ (r "d" 1, Mode.IS) ] with
   | Error [ 2 ] -> ()
   | Error _ | Ok () -> Alcotest.fail "mask must still show txn 2's X");
  (* Double release of a finished transaction is a no-op too. *)
  check "first release frees" 1 (List.length (Table.release_txn t ~txn:2));
  check "second release frees nothing" 0
    (List.length (Table.release_txn t ~txn:2));
  check "table empty" 0 (Table.lock_count t)

let test_multiple_blockers_sorted () =
  let t = Table.create () in
  ignore (Table.acquire_all t ~txn:5 [ (r "d" 1, Mode.IS) ]);
  ignore (Table.acquire_all t ~txn:3 [ (r "d" 1, Mode.IS) ]);
  match Table.acquire_all t ~txn:9 [ (r "d" 1, Mode.X) ] with
  | Error blockers -> Alcotest.(check (list int)) "sorted distinct" [ 3; 5 ] blockers
  | Ok () -> Alcotest.fail "should conflict"

let test_resources_namespaced_by_doc () =
  let t = Table.create () in
  ignore (Table.acquire_all t ~txn:1 [ (r "a" 1, Mode.X) ]);
  match Table.acquire_all t ~txn:2 [ (r "b" 1, Mode.X) ] with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "same node id in another doc must not conflict"

let prop_release_after_acquire_empty =
  QCheck.Test.make ~name:"acquire-all then release-txn leaves table empty"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 20) (pair (int_range 0 10) (int_range 0 7)))
    (fun reqs ->
      let t = Table.create () in
      let modes = Array.of_list Mode.all in
      let reqs =
        List.map (fun (node, mi) -> (r "d" node, modes.(mi))) reqs
      in
      (match Table.acquire_all t ~txn:1 reqs with
       | Ok () -> ()
       | Error _ -> failwith "self conflict impossible");
      ignore (Table.release_txn t ~txn:1);
      Table.lock_count t = 0)

(* --- Differential oracle ------------------------------------------------- *)

(* The pre-optimization lock table, verbatim semantics: resources are plain
   records hashed polymorphically, compatibility is answered by scanning the
   holder list. Randomized traces must produce identical grant/block
   outcomes, blocker sets, lock counts and freed-resource sets in the
   optimized (interned, bitmasked) table. *)
module Oracle = struct
  type res = { o_doc : string; o_node : int; o_value : string option }

  type holder = { h_txn : int; h_mode : Mode.t; mutable h_count : int }

  type t = { table : (res, holder list ref) Hashtbl.t; mutable grants : int }

  let create () = { table = Hashtbl.create 64; grants = 0 }

  let conflicts_on t ~txn r mode =
    match Hashtbl.find_opt t.table r with
    | None -> []
    | Some e ->
      List.filter_map
        (fun h ->
          if h.h_txn <> txn && not (Mode.compatible h.h_mode mode) then
            Some h.h_txn
          else None)
        !e

  let grant t ~txn r mode =
    let e =
      match Hashtbl.find_opt t.table r with
      | Some e -> e
      | None ->
        let e = ref [] in
        Hashtbl.replace t.table r e;
        e
    in
    (match List.find_opt (fun h -> h.h_txn = txn && h.h_mode = mode) !e with
     | Some h -> h.h_count <- h.h_count + 1
     | None -> e := { h_txn = txn; h_mode = mode; h_count = 1 } :: !e);
    t.grants <- t.grants + 1

  let ungrant t ~txn r mode =
    match Hashtbl.find_opt t.table r with
    | None -> ()
    | Some e -> (
      match List.find_opt (fun h -> h.h_txn = txn && h.h_mode = mode) !e with
      | None -> ()
      | Some h ->
        h.h_count <- h.h_count - 1;
        t.grants <- t.grants - 1;
        if h.h_count = 0 then begin
          e := List.filter (fun h' -> not (h' == h)) !e;
          if !e = [] then Hashtbl.remove t.table r
        end)

  let acquire_all t ~txn requests =
    let conflicting =
      List.concat_map (fun (r, mode) -> conflicts_on t ~txn r mode) requests
    in
    match List.sort_uniq compare conflicting with
    | [] ->
      List.iter (fun (r, mode) -> grant t ~txn r mode) requests;
      Ok ()
    | blockers -> Error blockers

  let release_request t ~txn requests =
    List.iter (fun (r, mode) -> ungrant t ~txn r mode) requests

  let release_txn t ~txn =
    let freed = ref [] in
    Hashtbl.iter
      (fun r e ->
        if List.exists (fun h -> h.h_txn = txn) !e then freed := r :: !freed)
      t.table;
    List.iter
      (fun r ->
        match Hashtbl.find_opt t.table r with
        | None -> ()
        | Some e ->
          let mine, others = List.partition (fun h -> h.h_txn = txn) !e in
          List.iter (fun h -> t.grants <- t.grants - h.h_count) mine;
          if others = [] then Hashtbl.remove t.table r else e := others)
      !freed;
    !freed

  let lock_count t = t.grants
end

(* One trace step: (selector, txn, [(node, mode idx, value selector)]). *)
let cmd_gen =
  QCheck.(
    triple (int_range 0 3) (int_range 1 4)
      (list_of_size Gen.(1 -- 6)
         (triple (int_range 0 7) (int_range 0 7) (int_range 0 2))))

let oracle_res (node, _, vsel) =
  let doc = if node land 1 = 0 then "oda" else "odb" in
  match vsel with
  | 0 -> { Oracle.o_doc = doc; o_node = node; o_value = None }
  | v -> { Oracle.o_doc = doc; o_node = node; o_value = Some (string_of_int v) }

let table_res (node, _, vsel) =
  let doc = if node land 1 = 0 then "oda" else "odb" in
  match vsel with
  | 0 -> Table.resource doc node
  | v -> Table.value_resource doc node (string_of_int v)

let res_triple r =
  (Table.resource_doc r, Table.resource_node r, Table.resource_value r)

let oracle_triple (r : Oracle.res) = (r.Oracle.o_doc, r.Oracle.o_node, r.Oracle.o_value)

let mode_of (_, mi, _) = List.nth Mode.all mi

let prop_differential_vs_oracle =
  QCheck.Test.make ~name:"optimized table behaves like pre-optimization oracle"
    ~count:300
    QCheck.(list_of_size Gen.(1 -- 40) cmd_gen)
    (fun cmds ->
      let t = Table.create () in
      let o = Oracle.create () in
      List.for_all
        (fun (sel, txn, reqs) ->
          let t_reqs = List.map (fun q -> (table_res q, mode_of q)) reqs in
          let o_reqs = List.map (fun q -> (oracle_res q, mode_of q)) reqs in
          let step_ok =
            match sel with
            | 0 | 1 -> (
              (* acquire (twice as likely as the release variants) *)
              match
                (Table.acquire_all t ~txn t_reqs, Oracle.acquire_all o ~txn o_reqs)
              with
              | Ok (), Ok () -> true
              | Error a, Error b -> a = b
              | _ -> false)
            | 2 ->
              Table.release_request t ~txn t_reqs;
              Oracle.release_request o ~txn o_reqs;
              true
            | _ ->
              let freed_t =
                Table.release_txn t ~txn |> List.map res_triple |> List.sort compare
              in
              let freed_o =
                Oracle.release_txn o ~txn
                |> List.map oracle_triple |> List.sort compare
              in
              freed_t = freed_o
          in
          step_ok && Table.lock_count t = Oracle.lock_count o)
        cmds)

(* Differential for the batched [acquire_all] rewrite: drive a second table
   through the verbatim per-request loop — conflicts collected one request
   at a time against the pre-batch state via the public [holders] view, then
   grants issued as singleton [acquire_all] calls — and require behavioural
   equality on every step of a random acquire/release/undo trace. Runs under
   whatever DTX_LOCK_SHARDS the process was started with, so the make-check
   gate exercises both shard counts {1, 64}. *)
let per_request_acquire_all t ~txn requests =
  let blockers =
    List.concat_map
      (fun (r, mode) ->
        List.filter_map
          (fun (htxn, hmode) ->
            if htxn <> txn && not (Mode.compatible hmode mode) then Some htxn
            else None)
          (Table.holders t r))
      requests
  in
  match List.sort_uniq compare blockers with
  | [] ->
    List.iter
      (fun req ->
        match Table.acquire_all t ~txn [ req ] with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "singleton grant conflicted after check")
      requests;
    Ok ()
  | bs -> Error bs

let prop_batched_vs_per_request =
  QCheck.Test.make
    ~name:"batched acquire_all behaves like the per-request loop" ~count:300
    QCheck.(list_of_size Gen.(1 -- 40) cmd_gen)
    (fun cmds ->
      let batched = Table.create () in
      let looped = Table.create () in
      List.for_all
        (fun (sel, txn, reqs) ->
          let rs = List.map (fun q -> (table_res q, mode_of q)) reqs in
          let step_ok =
            match sel with
            | 0 | 1 -> (
              match
                ( Table.acquire_all batched ~txn rs,
                  per_request_acquire_all looped ~txn rs )
              with
              | Ok (), Ok () -> true
              | Error a, Error b -> a = b
              | _ -> false)
            | 2 ->
              Table.release_request batched ~txn rs;
              Table.release_request looped ~txn rs;
              true
            | _ ->
              let fa = Table.release_txn batched ~txn |> List.sort compare in
              let fb = Table.release_txn looped ~txn |> List.sort compare in
              fa = fb
          in
          step_ok
          && Table.lock_count batched = Table.lock_count looped
          && List.sort compare (Table.locks_of batched ~txn)
             = List.sort compare (Table.locks_of looped ~txn))
        cmds)

(* --- Wfg ----------------------------------------------------------------- *)

let test_wfg_edges () =
  let g = Wfg.create () in
  Wfg.add_wait g ~waiter:1 ~holders:[ 2; 3 ];
  Alcotest.(check (list (pair int int))) "edges" [ (1, 2); (1, 3) ] (Wfg.edges g);
  Alcotest.(check (list int)) "waits of 1" [ 2; 3 ] (Wfg.waits_of g 1);
  check "size" 2 (Wfg.size g);
  Wfg.add_wait g ~waiter:1 ~holders:[ 1 ];
  check "self edge ignored" 2 (Wfg.size g)

let test_wfg_no_cycle () =
  let g = Wfg.create () in
  Wfg.add_wait g ~waiter:1 ~holders:[ 2 ];
  Wfg.add_wait g ~waiter:2 ~holders:[ 3 ];
  checkb "chain has no cycle" true (Wfg.find_cycle g = None)

let test_wfg_cycle () =
  let g = Wfg.create () in
  Wfg.add_wait g ~waiter:1 ~holders:[ 2 ];
  Wfg.add_wait g ~waiter:2 ~holders:[ 1 ];
  match Wfg.find_cycle g with
  | Some cycle ->
    Alcotest.(check (list int)) "both in cycle" [ 1; 2 ] (List.sort compare cycle)
  | None -> Alcotest.fail "cycle missed"

let test_wfg_remove_breaks_cycle () =
  let g = Wfg.create () in
  Wfg.add_wait g ~waiter:1 ~holders:[ 2 ];
  Wfg.add_wait g ~waiter:2 ~holders:[ 3 ];
  Wfg.add_wait g ~waiter:3 ~holders:[ 1 ];
  checkb "cycle present" true (Wfg.find_cycle g <> None);
  Wfg.remove_txn g 2;
  checkb "cycle gone" true (Wfg.find_cycle g = None);
  checkb "edges to 2 gone" true (List.for_all (fun (_, h) -> h <> 2) (Wfg.edges g))

let test_wfg_clear_waits () =
  let g = Wfg.create () in
  Wfg.add_wait g ~waiter:1 ~holders:[ 2 ];
  Wfg.add_wait g ~waiter:3 ~holders:[ 1 ];
  Wfg.clear_waits_of g 1;
  Alcotest.(check (list (pair int int))) "only 3->1 left" [ (3, 1) ] (Wfg.edges g)

let test_wfg_union_finds_distributed_cycle () =
  (* The paper's Fig.-6 situation: each site's graph is acyclic; the union
     is not. *)
  let s1 = Wfg.create () and s2 = Wfg.create () in
  Wfg.add_wait s1 ~waiter:1 ~holders:[ 2 ];
  Wfg.add_wait s2 ~waiter:2 ~holders:[ 1 ];
  checkb "site 1 acyclic" true (Wfg.find_cycle s1 = None);
  checkb "site 2 acyclic" true (Wfg.find_cycle s2 = None);
  let merged = Wfg.union [ s1; s2 ] in
  checkb "union cyclic" true (Wfg.find_cycle merged <> None);
  (* Union must not mutate inputs. *)
  check "s1 unchanged" 1 (Wfg.size s1)

let test_wfg_reverse_index () =
  let g = Wfg.create () in
  Wfg.add_wait g ~waiter:1 ~holders:[ 3 ];
  Wfg.add_wait g ~waiter:2 ~holders:[ 3; 4 ];
  Alcotest.(check (list int)) "waiters of 3" [ 1; 2 ] (Wfg.waiters_of g 3);
  Alcotest.(check (list int)) "waiters of 4" [ 2 ] (Wfg.waiters_of g 4);
  Alcotest.(check (list int)) "no waiters of 1" [] (Wfg.waiters_of g 1);
  (* Duplicate edge additions must not duplicate reverse entries. *)
  Wfg.add_wait g ~waiter:1 ~holders:[ 3 ];
  Alcotest.(check (list int)) "still two waiters" [ 1; 2 ] (Wfg.waiters_of g 3);
  Wfg.clear_waits_of g 1;
  Alcotest.(check (list int)) "waiter 1 unindexed" [ 2 ] (Wfg.waiters_of g 3);
  Wfg.remove_txn g 3;
  Alcotest.(check (list int)) "removed vertex has no waiters" []
    (Wfg.waiters_of g 3);
  Alcotest.(check (list (pair int int))) "only 2->4 left" [ (2, 4) ]
    (Wfg.edges g)

(* Regression for the O(V) remove_txn fold: the reverse index must stay an
   exact mirror of the forward edges under arbitrary churn, and removing
   every transaction must leave both directions empty. *)
let prop_reverse_index_mirrors_edges =
  QCheck.Test.make ~name:"reverse index mirrors forward edges under churn"
    ~count:300
    QCheck.(
      list_of_size Gen.(1 -- 40)
        (triple (int_range 0 3) (int_range 0 8)
           (list_of_size Gen.(0 -- 3) (int_range 0 8))))
    (fun cmds ->
      let g = Wfg.create () in
      List.iter
        (fun (sel, v, hs) ->
          match sel with
          | 0 | 1 -> Wfg.add_wait g ~waiter:v ~holders:hs
          | 2 -> Wfg.clear_waits_of g v
          | _ -> Wfg.remove_txn g v)
        cmds;
      let mirror_ok =
        List.for_all
          (fun (w, h) -> List.mem w (Wfg.waiters_of g h))
          (Wfg.edges g)
        && List.for_all
             (fun v ->
               List.for_all
                 (fun w -> List.mem v (Wfg.waits_of g w))
                 (Wfg.waiters_of g v))
             (Wfg.txns g)
      in
      List.iter (fun v -> Wfg.remove_txn g v) (Wfg.txns g);
      mirror_ok && Wfg.size g = 0 && Wfg.edges g = []
      && List.for_all (fun v -> Wfg.waiters_of g v = []) (List.init 9 Fun.id))

let test_wfg_copy_independent () =
  let g = Wfg.create () in
  Wfg.add_wait g ~waiter:1 ~holders:[ 2 ];
  let c = Wfg.copy g in
  Wfg.add_wait g ~waiter:2 ~holders:[ 1 ];
  checkb "copy unaffected" true (Wfg.find_cycle c = None);
  checkb "original cyclic" true (Wfg.find_cycle g <> None)

(* Oracle: a cycle exists iff some txn can reach itself (naive reachability). *)
let naive_has_cycle edges =
  let succs x = List.filter_map (fun (a, b) -> if a = x then Some b else None) edges in
  let txns = List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) edges) in
  let reaches_self start =
    let visited = Hashtbl.create 16 in
    let rec go x =
      List.exists
        (fun y ->
          y = start
          ||
          if Hashtbl.mem visited y then false
          else begin
            Hashtbl.add visited y ();
            go y
          end)
        (succs x)
    in
    go start
  in
  List.exists reaches_self txns

let prop_cycle_detection_matches_oracle =
  QCheck.Test.make ~name:"find_cycle agrees with naive reachability" ~count:300
    QCheck.(list_of_size Gen.(0 -- 25) (pair (int_range 0 8) (int_range 0 8)))
    (fun edges ->
      let edges = List.filter (fun (a, b) -> a <> b) edges in
      let g = Wfg.create () in
      List.iter (fun (a, b) -> Wfg.add_wait g ~waiter:a ~holders:[ b ]) edges;
      (Wfg.find_cycle g <> None) = naive_has_cycle edges)

let prop_cycle_members_form_cycle =
  QCheck.Test.make ~name:"reported cycle is a real cycle" ~count:300
    QCheck.(list_of_size Gen.(1 -- 25) (pair (int_range 0 8) (int_range 0 8)))
    (fun edges ->
      let edges = List.filter (fun (a, b) -> a <> b) edges in
      let g = Wfg.create () in
      List.iter (fun (a, b) -> Wfg.add_wait g ~waiter:a ~holders:[ b ]) edges;
      match Wfg.find_cycle g with
      | None -> true
      | Some cycle ->
        let n = List.length cycle in
        n >= 2
        && List.for_all
             (fun i ->
               let a = List.nth cycle i and b = List.nth cycle ((i + 1) mod n) in
               List.mem b (Wfg.waits_of g a))
             (List.init n (fun i -> i)))

(* Incremental cycle detection must be indistinguishable from the exhaustive
   search under arbitrary churn, including interleaved queries (which is what
   drives the acyclic/dirty state machine through all its transitions). *)
let prop_incremental_cycle_matches_exhaustive =
  QCheck.Test.make
    ~name:"incremental find_cycle = exhaustive under edge churn" ~count:300
    QCheck.(
      list_of_size Gen.(1 -- 40)
        (triple (int_range 0 5) (int_range 0 8)
           (list_of_size Gen.(0 -- 3) (int_range 0 8))))
    (fun cmds ->
      let g = Wfg.create () in
      List.for_all
        (fun (sel, v, hs) ->
          (match sel with
          | 0 | 1 | 2 -> Wfg.add_wait g ~waiter:v ~holders:hs
          | 3 -> Wfg.clear_waits_of g v
          | _ -> Wfg.remove_txn g v);
          Wfg.find_cycle g = Wfg.find_cycle_exhaustive g)
        cmds)

let () =
  Alcotest.run "locks"
    [ ( "modes",
        [ Alcotest.test_case "matrix symmetric" `Quick test_matrix_symmetric;
          Alcotest.test_case "X/XT conflict all" `Quick test_exclusive_conflicts_with_all;
          Alcotest.test_case "IX vs ST (paper)" `Quick test_paper_key_incompatibility;
          Alcotest.test_case "shared family" `Quick test_shared_family_compatible;
          Alcotest.test_case "SI/SA/SB vs ST" `Quick test_insert_shared_vs_tree;
          Alcotest.test_case "intention_for" `Quick test_intention_for;
          Alcotest.test_case "conflict mask = compat (64 pairs)" `Quick
            test_conflict_mask_matches_compat;
          Alcotest.test_case "conflict mask symmetric" `Quick
            test_conflict_mask_symmetric;
          Alcotest.test_case "index/bit encoding" `Quick test_mode_index_bit;
          Alcotest.test_case "mask union semantics" `Quick
            test_mask_union_semantics;
          Alcotest.test_case "strings" `Quick test_mode_strings ] );
      ( "table",
        [ Alcotest.test_case "resource accessors" `Quick test_resource_accessors;
          Alcotest.test_case "dedup requests" `Quick test_dedup_requests;
          Alcotest.test_case "acquire/release" `Quick test_acquire_release;
          Alcotest.test_case "conflicts reported" `Quick test_conflict_reported;
          Alcotest.test_case "all-or-nothing" `Quick test_all_or_nothing;
          Alcotest.test_case "self never conflicts" `Quick test_own_locks_never_conflict;
          Alcotest.test_case "refcounted" `Quick test_refcounted_grants;
          Alcotest.test_case "release_txn idempotent" `Quick
            test_release_txn_idempotent;
          Alcotest.test_case "blockers sorted" `Quick test_multiple_blockers_sorted;
          Alcotest.test_case "doc namespaces" `Quick test_resources_namespaced_by_doc;
          QCheck_alcotest.to_alcotest prop_release_after_acquire_empty;
          QCheck_alcotest.to_alcotest prop_differential_vs_oracle;
          QCheck_alcotest.to_alcotest prop_batched_vs_per_request ] );
      ( "wfg",
        [ Alcotest.test_case "edges" `Quick test_wfg_edges;
          Alcotest.test_case "no cycle" `Quick test_wfg_no_cycle;
          Alcotest.test_case "cycle" `Quick test_wfg_cycle;
          Alcotest.test_case "remove breaks cycle" `Quick test_wfg_remove_breaks_cycle;
          Alcotest.test_case "clear waits" `Quick test_wfg_clear_waits;
          Alcotest.test_case "union distributed cycle" `Quick
            test_wfg_union_finds_distributed_cycle;
          Alcotest.test_case "copy independent" `Quick test_wfg_copy_independent;
          Alcotest.test_case "reverse index" `Quick test_wfg_reverse_index;
          QCheck_alcotest.to_alcotest prop_reverse_index_mirrors_edges;
          QCheck_alcotest.to_alcotest prop_incremental_cycle_matches_exhaustive;
          QCheck_alcotest.to_alcotest prop_cycle_detection_matches_oracle;
          QCheck_alcotest.to_alcotest prop_cycle_members_form_cycle ] ) ]
