(* Tests for the simulated network: latency model, ordering, counters. *)

module Sim = Dtx_sim.Sim
module Net = Dtx_net.Net

let check = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)

let test_latency_model () =
  let sim = Sim.create () in
  let net = Net.of_config ~sim
      { Net.Config.lan with base_latency_ms = 1.0; per_kb_ms = 2.0 } in
  checkf "local free" 0.0 (Net.latency net ~src:1 ~dst:1 ~bytes:4096);
  checkf "base only" 1.0 (Net.latency net ~src:0 ~dst:1 ~bytes:0);
  checkf "base + size" 3.0 (Net.latency net ~src:0 ~dst:1 ~bytes:1024)

let test_delivery_time () =
  let sim = Sim.create () in
  let net = Net.of_config ~sim
      { Net.Config.lan with base_latency_ms = 0.5; per_kb_ms = 0.0 } in
  let at = ref (-1.0) in
  Net.send net ~src:0 ~dst:1 ~bytes:64 (fun () -> at := Sim.now sim);
  Sim.run sim;
  checkf "delivered after base latency" 0.5 !at

let test_local_delivery_still_async () =
  (* src = dst delivers through the event queue (causal ordering), at the
     current time. *)
  let sim = Sim.create () in
  let net = Net.of_config ~sim Net.Config.lan in
  let order = ref [] in
  Net.send net ~src:0 ~dst:0 ~bytes:64 (fun () -> order := "delivered" :: !order);
  order := "after-send" :: !order;
  Sim.run sim;
  Alcotest.(check (list string)) "send returns before delivery"
    [ "delivered"; "after-send" ] !order

let test_counters () =
  let sim = Sim.create () in
  let net = Net.of_config ~sim Net.Config.lan in
  Net.send net ~src:0 ~dst:1 ~bytes:100 (fun () -> ());
  Net.send net ~src:1 ~dst:2 ~bytes:200 (fun () -> ());
  Net.send net ~src:2 ~dst:2 ~bytes:999 (fun () -> ());
  check "remote messages" 2 (Net.messages net);
  check "bytes" 300 (Net.bytes_sent net);
  Net.reset_counters net;
  check "reset" 0 (Net.messages net)

let test_fifo_per_link () =
  (* Messages of the same size on the same link arrive in send order. *)
  let sim = Sim.create () in
  let net = Net.of_config ~sim Net.Config.lan in
  let log = ref [] in
  for i = 1 to 5 do
    Net.send net ~src:0 ~dst:1 ~bytes:64 (fun () -> log := i :: !log)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "in order" [ 5; 4; 3; 2; 1 ] !log

let test_bigger_messages_slower () =
  let sim = Sim.create () in
  let net = Net.of_config ~sim
      { Net.Config.lan with base_latency_ms = 0.1; per_kb_ms = 1.0 } in
  let log = ref [] in
  Net.send net ~src:0 ~dst:1 ~bytes:4096 (fun () -> log := "big" :: !log);
  Net.send net ~src:0 ~dst:1 ~bytes:64 (fun () -> log := "small" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "small overtakes big" [ "big"; "small" ] !log;
  checkb "both arrived" true (List.length !log = 2)

let test_profiles () =
  let sim = Sim.create () in
  let lan = Net.of_config ~sim Net.Config.lan in
  let wan = Net.of_config ~sim Net.Config.wan in
  checkb "wan slower" true
    (Net.latency wan ~src:0 ~dst:1 ~bytes:1024
     > Net.latency lan ~src:0 ~dst:1 ~bytes:1024);
  let custom = Net.of_config ~sim (Net.Config.with_base_latency_ms 1.0 Net.Config.wan) in
  checkb "override wins" true
    (Net.latency custom ~src:0 ~dst:1 ~bytes:0 < 2.0)

let test_drop_pct () =
  let sim = Sim.create () in
  let net = Net.of_config ~sim { Net.Config.lan with drop_pct = 50; seed = 3 } in
  let delivered = ref 0 in
  for _ = 1 to 200 do
    Net.send net ~src:0 ~dst:1 ~bytes:64 ~channel:Net.Unreliable (fun () -> incr delivered)
  done;
  Sim.run sim;
  check "sent counter includes drops" 200 (Net.messages net);
  check "drops + deliveries = sends" 200 (!delivered + Net.dropped net);
  checkb "roughly half dropped" true (Net.dropped net > 50 && Net.dropped net < 150)

let test_reliable_exempt_from_loss () =
  let sim = Sim.create () in
  let net = Net.of_config ~sim { Net.Config.lan with drop_pct = 100; seed = 3 } in
  let delivered = ref 0 in
  for _ = 1 to 20 do
    Net.send net ~src:0 ~dst:1 ~bytes:64 (fun () -> incr delivered)
  done;
  for _ = 1 to 20 do
    Net.send net ~src:0 ~dst:1 ~bytes:64 ~channel:Net.Unreliable (fun () -> incr delivered)
  done;
  Sim.run sim;
  check "reliable all delivered, unreliable none" 20 !delivered;
  check "20 dropped" 20 (Net.dropped net)

let test_local_never_dropped () =
  let sim = Sim.create () in
  let net = Net.of_config ~sim { Net.Config.lan with drop_pct = 100; seed = 3 } in
  let delivered = ref 0 in
  Net.send net ~src:1 ~dst:1 ~bytes:64 ~channel:Net.Unreliable (fun () -> incr delivered);
  Sim.run sim;
  check "local exempt" 1 !delivered

let test_invalid_drop_pct () =
  let sim = Sim.create () in
  Alcotest.check_raises "out of range" (Invalid_argument "Net.of_config: drop_pct")
    (fun () -> ignore (Net.of_config ~sim { Net.Config.lan with drop_pct = 101 }))

let () =
  Alcotest.run "net"
    [ ( "net",
        [ Alcotest.test_case "latency model" `Quick test_latency_model;
          Alcotest.test_case "delivery time" `Quick test_delivery_time;
          Alcotest.test_case "local async" `Quick test_local_delivery_still_async;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "fifo per link" `Quick test_fifo_per_link;
          Alcotest.test_case "size-dependent" `Quick test_bigger_messages_slower ] );
      ( "profiles+loss",
        [ Alcotest.test_case "profiles" `Quick test_profiles;
          Alcotest.test_case "drop pct" `Quick test_drop_pct;
          Alcotest.test_case "reliable exempt" `Quick test_reliable_exempt_from_loss;
          Alcotest.test_case "local exempt" `Quick test_local_never_dropped;
          Alcotest.test_case "invalid drop" `Quick test_invalid_drop_pct ] ) ]
