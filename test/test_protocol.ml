(* Tests for the protocol layer: XDGL lock-request rules per operation kind,
   Node2PL navigation locking, Doc2PL, and the pluggable Protocol facade. *)

module Protocol = Dtx_protocol.Protocol
module Xdgl_rules = Dtx_protocol.Xdgl_rules
module Node2pl_rules = Dtx_protocol.Node2pl_rules
module Mode = Dtx_locks.Mode
module Table = Dtx_locks.Table
module Dg = Dtx_dataguide.Dataguide
module Op = Dtx_update.Op
module Exec = Dtx_update.Exec
module P = Dtx_xpath.Parser
module Doc = Dtx_xml.Doc
module Xml_parser = Dtx_xml.Parser
module Generator = Dtx_xmark.Generator

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let store () =
  Xml_parser.parse ~name:"d2"
    "<products>\n\
     <product><id>4</id><price>1.20</price></product>\n\
     <product><id>14</id><price>3.50</price></product>\n\
     </products>"

let dg_of doc = Dg.build doc

let mode_on dg requests labels =
  (* Modes requested on the dataguide node at this label path. *)
  match Dg.find_path dg labels with
  | None -> []
  | Some n ->
    List.filter_map
      (fun ((r : Table.resource), m) -> if Table.resource_node r = n.Dg.dg_id then Some m else None)
      requests
    |> List.sort_uniq compare

(* --- XDGL rules ---------------------------------------------------------- *)

let test_xdgl_query_locks () =
  let doc = store () in
  let dg = dg_of doc in
  let reqs = Xdgl_rules.requests dg (Op.Query (P.parse "/products/product/price")) in
  Alcotest.(check (list string))
    "ST on target" [ "ST" ]
    (List.map Mode.to_string (mode_on dg reqs [ "products"; "product"; "price" ]));
  checkb "IS on ancestor product" true
    (List.mem Mode.IS (mode_on dg reqs [ "products"; "product" ]));
  checkb "IS on root" true (List.mem Mode.IS (mode_on dg reqs [ "products" ]))

let test_xdgl_query_predicate_locks () =
  let doc = store () in
  let dg = dg_of doc in
  let reqs =
    Xdgl_rules.requests dg (Op.Query (P.parse "/products/product[id = \"4\"]/price"))
  in
  checkb "ST on predicate node id" true
    (List.mem Mode.ST (mode_on dg reqs [ "products"; "product"; "id" ]))

let test_xdgl_insert_locks () =
  let doc = store () in
  let dg = dg_of doc in
  let op =
    Op.Insert
      { target = P.parse "/products/product[1]";
        pos = Op.Into;
        fragment = "<tag>x</tag>" }
  in
  let reqs = Xdgl_rules.requests dg op in
  (* X on the new node's path (created on demand), IX above, SI on the
     connecting node, IS above it. *)
  checkb "X on new path" true
    (List.mem Mode.X (mode_on dg reqs [ "products"; "product"; "tag" ]));
  checkb "SI on connect" true
    (List.mem Mode.SI (mode_on dg reqs [ "products"; "product" ]));
  checkb "IX on ancestor" true
    (List.mem Mode.IX (mode_on dg reqs [ "products"; "product" ]));
  checkb "intentions on root" true
    (let ms = mode_on dg reqs [ "products" ] in
     List.mem Mode.IX ms && List.mem Mode.IS ms)

let test_xdgl_insert_after_connects_to_parent () =
  let doc = store () in
  let dg = dg_of doc in
  let op =
    Op.Insert
      { target = P.parse "/products/product[1]"; pos = Op.After; fragment = "<product/>" }
  in
  let reqs = Xdgl_rules.requests dg op in
  checkb "SA on parent (connect)" true
    (List.mem Mode.SA (mode_on dg reqs [ "products" ]))

let test_xdgl_remove_locks () =
  let doc = store () in
  let dg = dg_of doc in
  let reqs = Xdgl_rules.requests dg (Op.Remove (P.parse "//product[id = \"4\"]")) in
  checkb "XT on target" true
    (List.mem Mode.XT (mode_on dg reqs [ "products"; "product" ]));
  checkb "IX above" true (List.mem Mode.IX (mode_on dg reqs [ "products" ]));
  checkb "ST on predicate path" true
    (List.mem Mode.ST (mode_on dg reqs [ "products"; "product"; "id" ]))

let test_xdgl_change_locks () =
  let doc = store () in
  let dg = dg_of doc in
  let reqs =
    Xdgl_rules.requests dg
      (Op.Change { target = P.parse "//product/price"; new_text = "0" })
  in
  checkb "X on target" true
    (List.mem Mode.X (mode_on dg reqs [ "products"; "product"; "price" ]))

let test_xdgl_rename_locks () =
  let doc = store () in
  let dg = dg_of doc in
  let reqs =
    Xdgl_rules.requests dg
      (Op.Rename { target = P.parse "//product/price"; new_label = "cost" })
  in
  checkb "XT on old path" true
    (List.mem Mode.XT (mode_on dg reqs [ "products"; "product"; "price" ]));
  checkb "X on new path" true
    (List.mem Mode.X (mode_on dg reqs [ "products"; "product"; "cost" ]))

let test_xdgl_transpose_locks () =
  let doc = Xml_parser.parse ~name:"d" "<r><a><x/></a><b/></r>" in
  let dg = dg_of doc in
  let reqs =
    Xdgl_rules.requests dg
      (Op.Transpose { source = P.parse "/r/a/x"; dest = P.parse "/r/b" })
  in
  checkb "XT on source" true (List.mem Mode.XT (mode_on dg reqs [ "r"; "a"; "x" ]));
  checkb "SI on dest" true (List.mem Mode.SI (mode_on dg reqs [ "r"; "b" ]));
  checkb "X on new location" true (List.mem Mode.X (mode_on dg reqs [ "r"; "b"; "x" ]))

let test_xdgl_scenario_conflict () =
  (* The paper's §2.4 incompatibility: a products query (ST on product) vs a
     product insertion (IX on product's DataGuide node). *)
  let doc = store () in
  let dg = dg_of doc in
  let table = Table.create () in
  let q = Xdgl_rules.requests dg (Op.Query (P.parse "/products/product")) in
  (match Table.acquire_all table ~txn:2 q with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "reader should lock");
  let ins =
    Xdgl_rules.requests dg
      (Op.Insert
         { target = P.parse "/products";
           pos = Op.Into;
           fragment = "<product><id>13</id></product>" })
  in
  match Table.acquire_all table ~txn:1 ins with
  | Error blockers -> Alcotest.(check (list int)) "blocked by reader" [ 2 ] blockers
  | Ok () -> Alcotest.fail "insert must conflict with the subtree read lock"

let test_frag_root_label () =
  Alcotest.(check (option string)) "simple" (Some "item")
    (Xdgl_rules.frag_root_label "<item id=\"3\"/>");
  Alcotest.(check (option string)) "leading space" (Some "a")
    (Xdgl_rules.frag_root_label "  <a><b/></a>");
  Alcotest.(check (option string)) "garbage" None (Xdgl_rules.frag_root_label "plain")

(* --- Node2PL rules -------------------------------------------------------- *)

let test_node2pl_query_retains_target_subtrees () =
  let doc = store () in
  let retained, processed = Node2pl_rules.requests doc (Op.Query (P.parse "//price")) in
  (* Retained: 2 price nodes ST + intention ancestors; processed counts
     navigation over the whole document (descendant scan). *)
  checkb "processed > retained" true (processed > List.length retained);
  checkb "some ST retained" true
    (List.exists (fun (_, m) -> m = Mode.ST) retained);
  checkb "processed >= doc scan" true (processed >= Doc.size doc)

let test_node2pl_update_exclusive_subtree () =
  let doc = store () in
  let retained, _ =
    Node2pl_rules.requests doc (Op.Remove (P.parse "//product[id = \"4\"]"))
  in
  (* X on all 5 nodes of the product subtree (product, id, its texts are
     nodes: product + id + price = 3 elements... exactly: product,id,price),
     IX on the root ancestor. *)
  let xs = List.filter (fun (_, m) -> m = Mode.X) retained in
  check "X on each subtree node" 3 (List.length xs);
  checkb "IX on ancestor" true (List.exists (fun (_, m) -> m = Mode.IX) retained)

let test_node2pl_conflicts_are_per_node () =
  let doc = store () in
  let table = Table.create () in
  let q1, _ = Node2pl_rules.requests doc (Op.Query (P.parse "//product[id = \"4\"]")) in
  (match Table.acquire_all table ~txn:1 q1 with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "reader locks");
  (* An update to the OTHER product must not conflict (finer than XDGL). *)
  let u, _ =
    Node2pl_rules.requests doc
      (Op.Change { target = P.parse "//product[id = \"14\"]/price"; new_text = "9" })
  in
  match Table.acquire_all table ~txn:2 u with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "disjoint subtrees must not conflict under Node2PL"

(* --- taDOM rules ------------------------------------------------------------ *)

module Tadom_rules = Dtx_protocol.Tadom_rules

let test_tadom_path_proportional () =
  let doc = store () in
  let retained, processed =
    Tadom_rules.requests doc (Op.Query (P.parse "//product[id = \"4\"]"))
  in
  check "processed = retained (no navigation charge)" (List.length retained)
    processed;
  (* One target at depth 1: ST on it + IS on the root — not the subtree. *)
  checkb "small lock set" true (List.length retained <= 8);
  checkb "has ST" true (List.exists (fun (_, m) -> m = Mode.ST) retained);
  checkb "has IS" true (List.exists (fun (_, m) -> m = Mode.IS) retained)

let test_tadom_finer_than_xdgl () =
  (* Two inserts under different products: XDGL conflicts (same label
     path), taDOM does not (different document nodes). *)
  let doc = store () in
  let table = Table.create () in
  let ins path =
    Op.Insert { target = P.parse path; pos = Op.Into; fragment = "<tag/>" }
  in
  let r1, _ = Tadom_rules.requests doc (ins "/products/product[id = \"4\"]") in
  let r2, _ = Tadom_rules.requests doc (ins "/products/product[id = \"14\"]") in
  (match Table.acquire_all table ~txn:1 r1 with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "first insert locks");
  (match Table.acquire_all table ~txn:2 r2 with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "taDOM: disjoint parents must not conflict");
  (* XDGL, by contrast, conflicts on the shared product label path. *)
  let dg = dg_of (store ()) in
  let table2 = Table.create () in
  let x1 = Xdgl_rules.requests dg (ins "/products/product[id = \"4\"]") in
  let x2 = Xdgl_rules.requests dg (ins "/products/product[id = \"14\"]") in
  (match Table.acquire_all table2 ~txn:1 x1 with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "xdgl first insert locks");
  match Table.acquire_all table2 ~txn:2 x2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "xdgl: same label path must conflict"

let test_tadom_subtree_protection () =
  (* A remove's XT on the target + intention locks above must block a
     reader of a node INSIDE the removed subtree (implicit coverage). *)
  let doc = store () in
  let table = Table.create () in
  let rm, _ = Tadom_rules.requests doc (Op.Remove (P.parse "//product[id = \"4\"]")) in
  (match Table.acquire_all table ~txn:1 rm with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "remove locks");
  let rd, _ =
    Tadom_rules.requests doc (Op.Query (P.parse "//product[id = \"4\"]/price"))
  in
  match Table.acquire_all table ~txn:2 rd with
  | Error [ 1 ] -> ()
  | Error _ -> Alcotest.fail "wrong blocker"
  | Ok () ->
    Alcotest.fail "reading inside a subtree being removed must conflict"

let test_tadom_in_cluster () =
  (* Full pluggability: the paper's future-work protocol running the whole
     distributed machinery. *)
  let module Sim = Dtx_sim.Sim in
  let module Net = Dtx_net.Net in
  let module Cluster = Dtx.Cluster in
  let module Txn = Dtx_txn.Txn in
  let module Allocation = Dtx_frag.Allocation in
  let sim = Sim.create () in
  let net = Net.of_config ~sim Net.Config.lan in
  let d = store () in
  let cluster =
    Cluster.create ~sim ~net ~n_sites:2
      (Cluster.default_config ~protocol:Protocol.tadom ())
      ~placements:[ { Allocation.doc = d; sites = [ 0; 1 ] } ]
  in
  Cluster.shutdown_when_idle cluster;
  let statuses = ref [] in
  for i = 0 to 5 do
    Cluster.submit cluster ~client:i ~coordinator:(i mod 2)
      ~ops:
        [ ( "d2",
            Op.Insert
              { target = P.parse "/products";
                pos = Op.Into;
                fragment = Printf.sprintf "<product><id>t%d</id></product>" i } ) ]
      ~on_finish:(fun txn -> statuses := txn.Txn.status :: !statuses)
    |> ignore
  done;
  Sim.run sim;
  check "all finished" 6 (List.length !statuses);
  checkb "all committed" true (List.for_all (fun s -> s = Txn.Committed) !statuses)

(* --- XDGL value locks --------------------------------------------------------*)

module Xdgl_value_rules = Dtx_protocol.Xdgl_value_rules

let test_value_locks_disjoint_readers () =
  (* Predicate readers of different id values share nothing on the id node
     beyond IS, so they are compatible with a writer's value lock on a third
     value. *)
  let doc = store () in
  let dg = dg_of doc in
  let table = Table.create () in
  let q v = Op.Query (P.parse (Printf.sprintf "//product[id = \"%s\"]" v)) in
  let r4 = Xdgl_value_rules.requests dg doc (q "4") in
  let r14 = Xdgl_value_rules.requests dg doc (q "14") in
  (match Table.acquire_all table ~txn:1 r4 with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "reader 4 locks");
  (match Table.acquire_all table ~txn:2 r14 with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "reader 14 locks");
  (* Both hold value-ST on different values of the same id node. *)
  checkb "value resources used" true
    (List.exists (fun ((r : Table.resource), _) -> Table.resource_value r = Some "4") r4)

let test_value_locks_same_value_conflict () =
  (* A change that rewrites a price to "9.99" conflicts with a predicate
     reader of price = "9.99" (phantom protection), even though the reader
     matched nothing yet. *)
  let doc = store () in
  let dg = dg_of doc in
  let table = Table.create () in
  let reader =
    Xdgl_value_rules.requests dg doc
      (Op.Query (P.parse "//product[price = \"9.99\"]"))
  in
  (match Table.acquire_all table ~txn:1 reader with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "reader locks");
  let writer =
    Xdgl_value_rules.requests dg doc
      (Op.Change { target = P.parse "//product[id = \"4\"]/price"; new_text = "9.99" })
  in
  match Table.acquire_all table ~txn:2 writer with
  | Error blockers -> Alcotest.(check (list int)) "phantom conflict" [ 1 ] blockers
  | Ok () -> Alcotest.fail "writing the watched value must conflict"

let test_value_locks_superset_of_base () =
  (* Structural safety: the value variant never locks less than XDGL on the
     plain (structural) resources. *)
  let doc = store () in
  let dg = dg_of doc in
  let ops =
    [ Op.Query (P.parse "//product[id = \"4\"]/price");
      Op.Change { target = P.parse "//product[id = \"4\"]/price"; new_text = "2" };
      Op.Remove (P.parse "//product[id = \"14\"]") ]
  in
  List.iter
    (fun op ->
      let value = Xdgl_value_rules.requests dg doc op in
      let plain_covered =
        List.for_all
          (fun ((r : Table.resource), m) ->
            (* every non-value exclusive lock of the base set is present *)
            Table.resource_value r <> None
            || List.exists
                 (fun ((r' : Table.resource), m') -> r' = r && m' = m)
                 value
            || not (Mode.is_exclusive m))
          (Xdgl_rules.requests dg
             (match op with
              | Op.Query p -> Op.Query (Dtx_xpath.Ast.without_predicates p)
              | other -> other))
      in
      checkb (Op.to_string op) true plain_covered)
    ops

let test_value_protocol_in_facade () =
  let p = Protocol.create Protocol.xdgl_value in
  Protocol.add_doc p (store ());
  (match Protocol.lock_requests p ~doc:"d2" (Op.Query (P.parse "//product[id = \"4\"]")) with
   | Ok (reqs, _) ->
     checkb "value resource present" true
       (List.exists (fun ((r : Table.resource), _) -> Table.resource_value r <> None) reqs)
   | Error e -> Alcotest.fail e);
  checkb "kind string" true
    (Protocol.kind_of_string "xdgl+vl" = Some Protocol.xdgl_value)

(* --- Protocol facade ------------------------------------------------------ *)

let test_facade_lifecycle () =
  List.iter
    (fun kind ->
      let p = Protocol.create kind in
      let doc = store () in
      Protocol.add_doc p doc;
      Alcotest.(check (list string)) "docs" [ "d2" ] (Protocol.docs p);
      checkb "doc found" true (Protocol.doc p "d2" <> None);
      match Protocol.lock_requests p ~doc:"d2" (Op.Query (P.parse "//price")) with
      | Ok (reqs, processed) ->
        checkb "some locks" true (reqs <> []);
        checkb "processed covers requests" true (processed >= List.length reqs)
      | Error e -> Alcotest.fail e)
    [ Protocol.xdgl; Protocol.node2pl; Protocol.doc2pl; Protocol.tadom ]

let test_facade_unknown_doc () =
  let p = Protocol.create Protocol.xdgl in
  match Protocol.lock_requests p ~doc:"ghost" (Op.Query (P.parse "//x")) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown doc must error"

let test_doc2pl_whole_document () =
  let p = Protocol.create Protocol.doc2pl in
  Protocol.add_doc p (store ());
  (match Protocol.lock_requests p ~doc:"d2" (Op.Query (P.parse "//price")) with
   | Ok ([ (r, Mode.ST) ], 1) -> check "pseudo node" 0 (Table.resource_node r)
   | _ -> Alcotest.fail "expected single ST");
  match
    Protocol.lock_requests p ~doc:"d2"
      (Op.Change { target = P.parse "//price"; new_text = "0" })
  with
  | Ok ([ (_, Mode.X) ], 1) -> ()
  | _ -> Alcotest.fail "expected single X"

let test_derivation_cache () =
  let p = Protocol.create Protocol.xdgl in
  Protocol.add_doc p (store ());
  let q = Op.Query (P.parse "/products/product[id = \"4\"]/price") in
  let first =
    match Protocol.lock_requests p ~doc:"d2" q with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  checkb "first call misses" true (Protocol.cache_stats p = (0, 1));
  let second =
    match Protocol.lock_requests p ~doc:"d2" q with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  checkb "second call hits" true (Protocol.cache_stats p = (1, 1));
  checkb "cached result identical" true (first = second);
  (* A DataGuide mutation must invalidate: the version bump makes the memo
     stale and the rederivation covers the new label path. *)
  Protocol.note_applied p ~doc:"d2" [ Exec.Dg_add [ "products"; "warranty" ] ];
  (match Protocol.lock_requests p ~doc:"d2" q with
   | Ok r ->
     checkb "stale entry not served" true (Protocol.cache_stats p = (1, 2));
     checkb "rederivation matches fresh rules" true (first = r)
   | Error e -> Alcotest.fail e);
  (* Distinct op shapes cache independently. *)
  (match Protocol.lock_requests p ~doc:"d2" (Op.Query (P.parse "//price")) with
   | Ok _ -> checkb "new shape misses" true (Protocol.cache_stats p = (1, 3))
   | Error e -> Alcotest.fail e);
  (* Non-caching kinds bypass the memo but still count every derivation as
     a miss, so the stats report derivation volume instead of zeros. *)
  let n = Protocol.create Protocol.node2pl in
  Protocol.add_doc n (store ());
  (match Protocol.lock_requests n ~doc:"d2" q with
   | Ok _ -> checkb "node2pl uncached" true (Protocol.cache_stats n = (0, 1))
   | Error e -> Alcotest.fail e)

let test_derivation_cache_insert_ensures_paths () =
  (* Insert derivation extends the DataGuide with the fragment's landing
     path (count 0); the memo is taken at the post-extension version, so a
     repeat of the same insert both hits and still names the same nodes. *)
  let p = Protocol.create Protocol.xdgl in
  Protocol.add_doc p (store ());
  let ins =
    Op.Insert
      { target = P.parse "/products/product"; pos = Op.Into;
        fragment = "<warranty>2y</warranty>" }
  in
  let first =
    match Protocol.lock_requests p ~doc:"d2" ins with
    | Ok (r, _) -> r
    | Error e -> Alcotest.fail e
  in
  (match Protocol.lock_requests p ~doc:"d2" ins with
   | Ok (r, _) ->
     checkb "repeat insert hits" true (fst (Protocol.cache_stats p) = 1);
     checkb "same request set" true (first = r)
   | Error e -> Alcotest.fail e);
  let dg =
    match Protocol.dataguide p "d2" with Some dg -> dg | None -> assert false
  in
  checkb "landing path ensured" true
    (Dg.find_path dg [ "products"; "product"; "warranty" ] <> None)

let test_structure_sizes () =
  let doc = Generator.generate (Generator.params_of_nodes 800) in
  let sizes =
    List.map
      (fun kind ->
        let p = Protocol.create kind in
        Protocol.add_doc p doc;
        Protocol.structure_size p doc.Doc.name)
      [ Protocol.xdgl; Protocol.node2pl; Protocol.doc2pl; Protocol.tadom ]
  in
  match sizes with
  | [ xdgl; node2pl; doc2pl; tadom ] ->
    check "doc2pl" 1 doc2pl;
    check "node2pl = doc size" (Doc.size doc) node2pl;
    check "tadom = doc size" (Doc.size doc) tadom;
    checkb "dataguide much smaller" true (xdgl * 3 < node2pl)
  | _ -> Alcotest.fail "sizes"

let test_note_applied_maintains_dataguide () =
  let p = Protocol.create Protocol.xdgl in
  let doc = store () in
  Protocol.add_doc p doc;
  let replica =
    match Protocol.doc p "d2" with Some d -> d | None -> Alcotest.fail "no doc"
  in
  let op =
    Op.Insert
      { target = P.parse "/products";
        pos = Op.Into;
        fragment = "<product><id>9</id></product>" }
  in
  (match Exec.apply replica op with
   | Ok eff ->
     Protocol.note_applied p ~doc:"d2" eff.Exec.dg;
     (match Protocol.dataguide p "d2" with
      | Some dg -> checkb "dg exact" true (Dg.validate dg replica = Ok ())
      | None -> Alcotest.fail "no dataguide")
   | Error e -> Alcotest.fail (Exec.error_to_string e));
  checkb "node2pl has no dataguide" true
    (Protocol.dataguide (Protocol.create Protocol.node2pl) "d2" = None)

let test_kind_strings () =
  List.iter
    (fun k ->
      match Protocol.kind_of_string (Protocol.kind_to_string k) with
      | Some k' -> checkb "roundtrip" true (k = k')
      | None -> Alcotest.fail "kind_of_string")
    [ Protocol.xdgl; Protocol.node2pl; Protocol.doc2pl; Protocol.tadom ]

(* --- property: lock coverage --------------------------------------------- *)

(* Safety property tying rules to semantics: if two operations' XDGL lock
   sets are compatible (no conflict between two distinct transactions), the
   operations touch disjoint document regions, i.e. executing them in either
   order yields the same document. We check a weaker, decidable version:
   an update and a query that DO овerlap structurally must conflict. *)
let prop_xdgl_update_conflicts_with_overlapping_query =
  let cases =
    [ ("/products/product/price", "CHANGE //product/price TO \"0\"");
      ("/products/product", "REMOVE //product[id = \"4\"]");
      ("//product[id = \"4\"]", "INSERT INTO /products/product[1] <tag/>");
      ("/products/product/id", "RENAME //product/id TO key") ]
  in
  QCheck.Test.make ~name:"xdgl: overlapping query/update conflict" ~count:20
    QCheck.(oneofl cases)
    (fun (qpath, update_text) ->
      let doc = store () in
      let dg = dg_of doc in
      let table = Table.create () in
      let q = Xdgl_rules.requests dg (Op.Query (P.parse qpath)) in
      (match Table.acquire_all table ~txn:1 q with
       | Ok () -> ()
       | Error _ -> failwith "reader must acquire on empty table");
      let update =
        match Op.parse update_text with Ok op -> op | Error e -> failwith e
      in
      let u = Xdgl_rules.requests dg update in
      match Table.acquire_all table ~txn:2 u with
      | Error _ -> true
      | Ok () -> false)

(* Exclusive-coverage property: after executing a random update under the
   locks Xdgl_rules computed, every modified document node's label path must
   be covered by an exclusive-mode lock (X or XT) on that DataGuide node or
   a tree lock on an ancestor. This ties the lock rules to the execution
   semantics: nothing changes outside the locked region. *)
module Generator_q = Dtx_xmark.Queries
module Rng = Dtx_util.Rng

let covered_exclusively dg requests labels =
  (* Walk prefixes of the label path; the full path needs X/XT, a strict
     prefix covers only via a tree lock (XT). *)
  let full_len = List.length labels in
  let rec prefixes acc k =
    if k > full_len then List.rev acc
    else prefixes ((List.filteri (fun i _ -> i < k) labels, k) :: acc) (k + 1)
  in
  List.exists
    (fun (prefix, k) ->
      match Dg.find_path dg prefix with
      | None -> false
      | Some n ->
        List.exists
          (fun ((r : Table.resource), m) ->
            Table.resource_node r = n.Dg.dg_id
            && (m = Mode.XT || (m = Mode.X && k = full_len)))
          requests)
    (prefixes [] 1)

let prop_xdgl_locks_cover_modifications =
  QCheck.Test.make ~name:"xdgl locks cover every modified node" ~count:60
    QCheck.small_nat
    (fun seed ->
      let doc = Generator.generate ~name:"c" (Generator.params_of_nodes 400) in
      let dg = Dg.build doc in
      let rng = Rng.create (seed + 13) in
      let counter = ref 0 in
      let fresh () = incr counter; !counter in
      let op = Generator_q.gen_update rng ~fresh doc in
      let requests = Xdgl_rules.requests dg op in
      match Exec.apply doc op with
      | Error _ -> true (* nothing modified, nothing to cover *)
      | Ok eff ->
        let modified_paths =
          List.concat_map
            (fun entry ->
              match entry with
              | Exec.Undo_insert id | Exec.Undo_rename { node = id; _ }
              | Exec.Undo_change { node = id; _ }
              | Exec.Undo_transpose { node = id; _ } -> (
                match Dtx_xml.Doc.find doc id with
                | Some n -> [ Dtx_xml.Node.label_path n ]
                | None -> [])
              | Exec.Undo_remove { parent; subtree; _ } -> (
                match Dtx_xml.Doc.find doc parent with
                | Some p ->
                  [ Dtx_xml.Node.label_path p
                    @ [ subtree.Dtx_xml.Node.label ] ]
                | None -> []))
            eff.Exec.undo
        in
        List.for_all
          (fun labels ->
            (* The DataGuide node may have been created fresh by the insert
               (ensure_path in the rules); look it up in the rules' guide. *)
            covered_exclusively dg requests labels)
          modified_paths)

let () =
  Alcotest.run "protocol"
    [ ( "xdgl",
        [ Alcotest.test_case "query locks" `Quick test_xdgl_query_locks;
          Alcotest.test_case "predicate locks" `Quick test_xdgl_query_predicate_locks;
          Alcotest.test_case "insert locks" `Quick test_xdgl_insert_locks;
          Alcotest.test_case "insert-after connect" `Quick
            test_xdgl_insert_after_connects_to_parent;
          Alcotest.test_case "remove locks" `Quick test_xdgl_remove_locks;
          Alcotest.test_case "change locks" `Quick test_xdgl_change_locks;
          Alcotest.test_case "rename locks" `Quick test_xdgl_rename_locks;
          Alcotest.test_case "transpose locks" `Quick test_xdgl_transpose_locks;
          Alcotest.test_case "scenario conflict (Fig. 6)" `Quick test_xdgl_scenario_conflict;
          Alcotest.test_case "frag_root_label" `Quick test_frag_root_label;
          QCheck_alcotest.to_alcotest
            prop_xdgl_update_conflicts_with_overlapping_query;
          QCheck_alcotest.to_alcotest prop_xdgl_locks_cover_modifications ] );
      ( "tadom",
        [ Alcotest.test_case "path proportional" `Quick test_tadom_path_proportional;
          Alcotest.test_case "finer than xdgl" `Quick test_tadom_finer_than_xdgl;
          Alcotest.test_case "subtree protection" `Quick test_tadom_subtree_protection;
          Alcotest.test_case "runs in the cluster" `Quick test_tadom_in_cluster ] );
      ( "xdgl+vl",
        [ Alcotest.test_case "disjoint value readers" `Quick
            test_value_locks_disjoint_readers;
          Alcotest.test_case "same-value phantom conflict" `Quick
            test_value_locks_same_value_conflict;
          Alcotest.test_case "superset of base exclusives" `Quick
            test_value_locks_superset_of_base;
          Alcotest.test_case "facade" `Quick test_value_protocol_in_facade ] );
      ( "node2pl",
        [ Alcotest.test_case "navigation cost" `Quick
            test_node2pl_query_retains_target_subtrees;
          Alcotest.test_case "exclusive subtree" `Quick
            test_node2pl_update_exclusive_subtree;
          Alcotest.test_case "per-node conflicts" `Quick
            test_node2pl_conflicts_are_per_node ] );
      ( "facade",
        [ Alcotest.test_case "lifecycle" `Quick test_facade_lifecycle;
          Alcotest.test_case "unknown doc" `Quick test_facade_unknown_doc;
          Alcotest.test_case "doc2pl" `Quick test_doc2pl_whole_document;
          Alcotest.test_case "structure sizes" `Quick test_structure_sizes;
          Alcotest.test_case "derivation cache" `Quick test_derivation_cache;
          Alcotest.test_case "cache vs insert ensure_path" `Quick
            test_derivation_cache_insert_ensures_paths;
          Alcotest.test_case "note_applied" `Quick test_note_applied_maintains_dataguide;
          Alcotest.test_case "kind strings" `Quick test_kind_strings ] ) ]
