(* Reliability features in action — the paper's §5 future-work list,
   implemented: two-phase commit with write-ahead logs, site crash and
   presumed-abort recovery, deadlock prevention policies, and lossy links
   with operation timeouts.

   Run with: dune exec examples/reliability.exe *)

module Sim = Dtx_sim.Sim
module Net = Dtx_net.Net
module Cluster = Dtx.Cluster
module Site = Dtx.Site
module Wal = Dtx.Wal
module Txn = Dtx_txn.Txn
module Op = Dtx_update.Op
module P = Dtx_xpath.Parser
module Eval = Dtx_xpath.Eval
module Protocol = Dtx_protocol.Protocol
module Allocation = Dtx_frag.Allocation

let ledger_text =
  {|<ledger><account><id>a1</id><balance>100</balance></account>
           <account><id>a2</id><balance>50</balance></account></ledger>|}

let replica cluster site =
  match Protocol.doc (Cluster.sites cluster).(site).Site.protocol "ledger" with
  | Some d -> d
  | None -> assert false

let fresh_cluster ?(commit = Cluster.Two_phase) ?(policy = Dtx.Site.Detection)
    ?(drop_pct = 0) () =
  let sim = Sim.create () in
  let net = Net.of_config ~sim Net.Config.(lan |> with_drop_pct drop_pct |> with_seed 5) in
  let ledger = Dtx_xml.Parser.parse ~name:"ledger" ledger_text in
  let config =
    { (Cluster.default_config ()) with
      commit;
      deadlock_policy = policy;
      deadlock_period_ms = 5.0;
      op_timeout_ms = (if drop_pct > 0 then Some 15.0 else None) }
  in
  let cluster =
    Cluster.create ~sim ~net ~n_sites:2 config
      ~placements:[ { Allocation.doc = ledger; sites = [ 0; 1 ] } ]
  in
  Cluster.shutdown_when_idle cluster;
  (sim, net, cluster)

let deposit i = Printf.sprintf "<entry><id>d%d</id><amount>%d</amount></entry>" i (10 * i)

let () =
  (* 1. Two-phase commit leaves a durable audit trail. *)
  print_endline "== 1. two-phase commit + write-ahead log ==";
  let sim, _, cluster = fresh_cluster () in
  ignore
    (Cluster.submit cluster ~client:1 ~coordinator:0
       ~ops:
         [ ( "ledger",
             Op.Insert
               { target = P.parse "/ledger/account[id = \"a1\"]";
                 pos = Op.Into;
                 fragment = deposit 1 } ) ]
       ~on_finish:(fun txn ->
         Printf.printf "deposit: %s\n" (Txn.status_to_string txn.Txn.status)));
  Sim.run sim;
  Array.iter
    (fun (s : Site.t) ->
      Printf.printf "site %d WAL: %s\n" s.Site.id
        (String.concat "; "
           (List.map
              (function
                | Wal.Prepared { txn; _ } -> Printf.sprintf "prepared t%d" txn
                | Wal.Committed { txn; _ } -> Printf.sprintf "committed t%d" txn
                | Wal.Aborted { txn; _ } -> Printf.sprintf "aborted t%d" txn)
              (Wal.entries s.Site.wal))))
    (Cluster.sites cluster);

  (* 2. Crash and presumed-abort recovery. *)
  print_endline "\n== 2. crash + recovery ==";
  let sim, _, cluster = fresh_cluster () in
  let submit_deposit i =
    ignore
      (Cluster.submit cluster ~client:i ~coordinator:0
         ~ops:
           [ ( "ledger",
               Op.Insert
                 { target = P.parse "/ledger/account[id = \"a2\"]";
                   pos = Op.Into;
                   fragment = deposit i } ) ]
         ~on_finish:(fun txn ->
           Printf.printf "deposit %d: %s\n" i (Txn.status_to_string txn.Txn.status)))
  in
  submit_deposit 1;
  Sim.run sim;
  Printf.printf "crashing site 1 (loses its memory)...\n";
  Cluster.crash_site cluster ~site:1;
  submit_deposit 2;
  (* cannot reach site 1's replica -> aborts/fails *)
  Sim.run sim;
  Cluster.recover_site cluster ~site:1;
  Printf.printf "site 1 recovered from its store; in-doubt txns: %d\n"
    (List.length (Wal.in_doubt (Cluster.sites cluster).(1).Site.wal));
  submit_deposit 3;
  Sim.run sim;
  let entries site =
    List.length (Eval.select (replica cluster site) (P.parse "//entry"))
  in
  Printf.printf
    "entries after recovery: site0=%d site1=%d (deposit 1 and 3 only; 2 rolled back)\n"
    (entries 0) (entries 1);

  (* 3. Deadlock prevention: the crossing-transactions scenario under
        wound-wait — no detector needed, the older transaction wins. *)
  print_endline "\n== 3. wound-wait prevention ==";
  let sim, _, cluster = fresh_cluster ~policy:Dtx.Site.Wound_wait () in
  let crossing name coord first second =
    ignore
      (Cluster.submit cluster ~client:coord ~coordinator:coord
         ~ops:
           [ ("ledger", Op.Query (P.parse first));
             ( "ledger",
               Op.Change { target = P.parse second; new_text = "77" } ) ]
         ~on_finish:(fun txn ->
           Printf.printf "%s: %s\n" name (Txn.status_to_string txn.Txn.status)))
  in
  crossing "older txn" 0 "/ledger/account[id = \"a1\"]" "/ledger/account[id = \"a2\"]/balance";
  crossing "younger txn" 1 "/ledger/account[id = \"a2\"]" "/ledger/account[id = \"a1\"]/balance";
  Sim.run sim;
  let s = Cluster.stats cluster in
  Printf.printf "wounded: %d, detector cycles found: %d\n" s.Cluster.wounded
    s.Cluster.distributed_deadlocks;

  (* 4. Lossy network with operation timeouts. *)
  print_endline "\n== 4. lossy links + timeouts ==";
  let sim, net, cluster = fresh_cluster ~commit:Cluster.One_phase ~drop_pct:15 () in
  let done_ = ref (0, 0) in
  for i = 1 to 10 do
    ignore
      (Cluster.submit cluster ~client:i ~coordinator:(i mod 2)
         ~ops:
           [ ( "ledger",
               Op.Insert
                 { target = P.parse "/ledger/account[id = \"a1\"]";
                   pos = Op.Into;
                   fragment = deposit (100 + i) } ) ]
         ~on_finish:(fun txn ->
           let c, a = !done_ in
           done_ :=
             if txn.Txn.status = Txn.Committed then (c + 1, a) else (c, a + 1)))
  done;
  Sim.run sim;
  let c, a = !done_ in
  Printf.printf
    "10 deposits over a 15%%-lossy link: %d committed, %d timed out/aborted \
     (%d messages dropped); replicas still agree: %b\n"
    c a (Net.dropped net)
    (Dtx_xml.Doc.equal_structure (replica cluster 0) (replica cluster 1));
  Format.printf "traffic by message type:@\n%a@." Net.pp_traffic net
