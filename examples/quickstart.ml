(* Quickstart: boot a two-site DTX cluster over one replicated document,
   run a read transaction and an update transaction, and look at the result.

   Run with: dune exec examples/quickstart.exe *)

module Sim = Dtx_sim.Sim
module Net = Dtx_net.Net
module Cluster = Dtx.Cluster
module Site = Dtx.Site
module Txn = Dtx_txn.Txn
module Op = Dtx_update.Op
module P = Dtx_xpath.Parser
module Eval = Dtx_xpath.Eval
module Node = Dtx_xml.Node
module Protocol = Dtx_protocol.Protocol
module Allocation = Dtx_frag.Allocation

let () =
  (* 1. A document: a tiny product catalogue. *)
  let catalogue =
    Dtx_xml.Parser.parse ~name:"catalogue"
      {|<products>
          <product><id>1</id><name>Mouse</name><price>10.30</price></product>
          <product><id>2</id><name>Keyboard</name><price>9.90</price></product>
        </products>|}
  in

  (* 2. A simulated two-site cluster, the catalogue replicated on both. *)
  let sim = Sim.create () in
  let net = Net.of_config ~sim Net.Config.lan in
  let cluster =
    Cluster.create ~sim ~net ~n_sites:2
      (Cluster.default_config ()) (* XDGL protocol, default cost model *)
      ~placements:[ { Allocation.doc = catalogue; sites = [ 0; 1 ] } ]
  in
  Cluster.shutdown_when_idle cluster;

  (* 3. A read-only transaction: all product names. *)
  ignore
    (Cluster.submit cluster ~client:1 ~coordinator:0
       ~ops:[ ("catalogue", Op.Query (P.parse "/products/product/name")) ]
       ~on_finish:(fun txn ->
         Printf.printf "read txn t%d: %s in %.2f ms\n" txn.Txn.id
           (Txn.status_to_string txn.Txn.status)
           (Txn.response_time txn)));

  (* 4. An update transaction, written in the textual operation syntax. *)
  let parse_op s = match Op.parse s with Ok op -> op | Error e -> failwith e in
  ignore
    (Cluster.submit cluster ~client:2 ~coordinator:1
       ~ops:
         [ ( "catalogue",
             parse_op
               "INSERT INTO /products <product><id>3</id><name>Monitor</name><price>129.00</price></product>"
           );
           ("catalogue", parse_op "CHANGE /products/product[id = \"1\"]/price TO \"8.99\"") ]
       ~on_finish:(fun txn ->
         Printf.printf "update txn t%d: %s in %.2f ms\n" txn.Txn.id
           (Txn.status_to_string txn.Txn.status)
           (Txn.response_time txn)));

  (* 5. Run the simulated cluster until everything finished. *)
  Sim.run sim;

  (* 6. Inspect a replica: both sites converged on the same content. *)
  let replica site =
    match Protocol.doc (Cluster.sites cluster).(site).Site.protocol "catalogue" with
    | Some d -> d
    | None -> assert false
  in
  Printf.printf "\ncatalogue on site 0:\n";
  List.iter
    (fun product ->
      Printf.printf "  %-10s %8s\n"
        (Node.text_content (Option.get (Node.find_child product ~label:"name")))
        (Node.text_content (Option.get (Node.find_child product ~label:"price"))))
    (Eval.select (replica 0) (P.parse "/products/product"));
  Printf.printf "replicas equal: %b\n"
    (Dtx_xml.Doc.equal_structure (replica 0) (replica 1));
  let s = Cluster.stats cluster in
  Printf.printf "committed=%d aborted=%d messages=%d lock requests=%d\n"
    s.Cluster.committed s.Cluster.aborted (Net.messages net)
    (Cluster.total_lock_requests cluster);
  Format.printf "message breakdown:@\n%a@." Net.pp_traffic net
