(* A distributed XMark auction site: the workload of the paper's evaluation
   as an application. Generates an auction database, fragments it over four
   sites (partial replication), and runs a mixed read/update workload under
   each of the three concurrency-control protocols, printing a comparison —
   a miniature of the paper's Figs. 9–12.

   Run with: dune exec examples/auction_site.exe *)

module Workload = Dtx_workload.Workload
module Protocol = Dtx_protocol.Protocol
module Generator = Dtx_xmark.Generator
module Fragment = Dtx_frag.Fragment
module Doc = Dtx_xml.Doc
module Stats = Dtx_util.Stats

let () =
  (* A look at the database first. *)
  let base = Generator.generate (Generator.params_of_mb 16.0) in
  Printf.printf "auction database: %d nodes (%d items, %d persons, %d auctions)\n"
    (Doc.size base)
    (List.length (Generator.item_ids base))
    (List.length (Generator.person_ids base))
    (List.length (Generator.open_auction_ids base));
  let frags = Fragment.fragment base ~parts:4 in
  Printf.printf "fragmented into %d parts, sizes: %s (imbalance %.2fx)\n\n"
    (List.length frags)
    (String.concat ", " (List.map (fun f -> string_of_int (Doc.size f)) frags))
    (Fragment.size_imbalance frags);

  let params =
    { Workload.default_params with
      n_clients = 24;
      base_size_mb = 16.0;
      update_txn_pct = 30 }
  in
  Printf.printf
    "workload: %d clients x %d txns x %d ops, %d%% update transactions\n\n"
    params.Workload.n_clients params.Workload.txns_per_client
    params.Workload.ops_per_txn params.Workload.update_txn_pct;
  Printf.printf "%-10s %10s %10s %10s %10s %12s %12s\n" "protocol" "mean ms"
    "p95 ms" "commits" "deadlocks" "lock reqs" "makespan ms";
  List.iter
    (fun kind ->
      let r = Workload.run { params with protocol = kind } in
      Printf.printf "%-10s %10.1f %10.1f %10d %10d %12d %12.1f\n"
        (Protocol.kind_to_string kind)
        r.Workload.response.Stats.mean r.Workload.response.Stats.p95
        r.Workload.committed r.Workload.deadlocks r.Workload.lock_requests
        r.Workload.makespan_ms)
    [ Protocol.xdgl; Protocol.node2pl; Protocol.doc2pl ];
  print_endline
    "\n(XDGL: fast, fine-grained, more deadlocks; Node2PL: slow navigation\n\
     locking; Doc2PL: one lock per document — the paper's related-work\n\
     baseline behaviours.)"
