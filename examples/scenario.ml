(* The paper's §2.4 execution scenario, narrated step by step:

     - two sites: s1 holds document d1 (people); s2 holds d1 and d2 (products)
     - client c1 at s1 submits t1 = { query person 4; insert product Mouse }
     - client c2 at s2 submits t2 = { query all products; insert person
       Patricia }
     - the two transactions deadlock across sites (Fig. 6: IX vs ST on the
       DataGuide nodes); the detector unions the wait-for graphs, finds the
       cycle and aborts the newest transaction (t2)
     - t1 commits; the client discards t2 and runs t3 = { query product 14;
       insert product Keyboard }, which commits cleanly.

   Run with: dune exec examples/scenario.exe *)

module Sim = Dtx_sim.Sim
module Net = Dtx_net.Net
module Cluster = Dtx.Cluster
module Site = Dtx.Site
module Txn = Dtx_txn.Txn
module Op = Dtx_update.Op
module P = Dtx_xpath.Parser
module Protocol = Dtx_protocol.Protocol
module Dataguide = Dtx_dataguide.Dataguide
module Allocation = Dtx_frag.Allocation
module Printer = Dtx_xml.Printer

let d1_text =
  {|<people><person><id>4</id><name>Ana</name></person></people>|}

let d2_text =
  {|<products><product><id>14</id><description>Pen</description><price>1.20</price></product></products>|}

let () =
  let sim = Sim.create () in
  let net = Net.of_config ~sim Net.Config.lan in
  let d1 = Dtx_xml.Parser.parse ~name:"d1" d1_text in
  let d2 = Dtx_xml.Parser.parse ~name:"d2" d2_text in
  let cluster =
    Cluster.create ~sim ~net ~n_sites:2
      { (Cluster.default_config ()) with deadlock_period_ms = 5.0 }
      ~placements:
        [ { Allocation.doc = d1; sites = [ 0; 1 ] };
          { Allocation.doc = d2; sites = [ 1 ] } ]
  in
  Cluster.shutdown_when_idle cluster;

  print_endline "== DTX scenario (paper section 2.4) ==";
  print_endline "site s1: d1            site s2: d1, d2\n";

  (* The Fig.-5 view: the DataGuides the lock manager operates on. *)
  let dg site doc =
    match Protocol.dataguide (Cluster.sites cluster).(site).Site.protocol doc with
    | Some dg -> Format.asprintf "%a" Dataguide.pp dg
    | None -> "(no dataguide)"
  in
  Printf.printf "DataGuide of d1 at s1 (cf. Fig. 5):\n%s\n" (dg 0 "d1");
  Printf.printf "DataGuide of d2 at s2:\n%s\n" (dg 1 "d2");

  let report name txn =
    Printf.printf "[%-3s] %-9s after %.2f ms (waited %.2f ms)\n" name
      (Txn.status_to_string txn.Txn.status)
      (Txn.response_time txn) txn.Txn.waited_total
  in
  (* t1 from c1 at s1. *)
  ignore
    (Cluster.submit cluster ~client:1 ~coordinator:0
       ~ops:
         [ ("d1", Op.Query (P.parse "/people/person[id = \"4\"]"));
           ( "d2",
             Op.Insert
               { target = P.parse "/products";
                 pos = Op.Into;
                 fragment =
                   "<product><id>13</id><description>Mouse</description><price>10.30</price></product>"
               } ) ]
       ~on_finish:(report "t1"));
  (* t2 from c2 at s2, submitted simultaneously. *)
  ignore
    (Cluster.submit cluster ~client:2 ~coordinator:1
       ~ops:
         [ ("d2", Op.Query (P.parse "/products/product"));
           ( "d1",
             Op.Insert
               { target = P.parse "/people";
                 pos = Op.Into;
                 fragment = "<person><id>22</id><name>Patricia</name></person>" }
           ) ]
       ~on_finish:(report "t2"));
  Sim.run sim;

  let s = Cluster.stats cluster in
  Printf.printf
    "\ndistributed deadlocks detected: %d (deadlock aborts: %d)\n\n"
    s.Cluster.distributed_deadlocks s.Cluster.deadlock_aborts;

  (* The client discards t2 and runs t3. *)
  ignore
    (Cluster.submit cluster ~client:2 ~coordinator:1
       ~ops:
         [ ("d2", Op.Query (P.parse "/products/product[id = \"14\"]"));
           ( "d2",
             Op.Insert
               { target = P.parse "/products";
                 pos = Op.Into;
                 fragment =
                   "<product><id>32</id><description>Keyboard</description><price>9.90</price></product>"
               } ) ]
       ~on_finish:(report "t3"));
  Sim.run sim;

  let replica site doc =
    match Protocol.doc (Cluster.sites cluster).(site).Site.protocol doc with
    | Some d -> d
    | None -> assert false
  in
  print_endline "\nfinal d2 at s2 (Mouse and Keyboard in, Patricia never appeared):";
  print_endline (Printer.to_string ~decl:false (replica 1 "d2"));
  Printf.printf "\nd1 replicas converged: %b\n"
    (Dtx_xml.Doc.equal_structure (replica 0 "d1") (replica 1 "d1"))
