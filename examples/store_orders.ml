(* A small distributed retail scenario written entirely in DTX's textual
   operation language (QUERY / INSERT / CHANGE / REMOVE / TRANSPOSE /
   RENAME), with a filesystem-backed store so the committed state survives
   as real XML files you can inspect afterwards.

   Three sites: "fortaleza" holds the customers document, "recife" holds
   orders, "natal" holds inventory plus a replica of orders. Transactions
   cross sites: placing an order reads inventory at natal and writes orders
   at recife+natal.

   Run with: dune exec examples/store_orders.exe *)

module Sim = Dtx_sim.Sim
module Net = Dtx_net.Net
module Cluster = Dtx.Cluster
module Site = Dtx.Site
module Txn = Dtx_txn.Txn
module Op = Dtx_update.Op
module P = Dtx_xpath.Parser
module Eval = Dtx_xpath.Eval
module Node = Dtx_xml.Node
module Protocol = Dtx_protocol.Protocol
module Allocation = Dtx_frag.Allocation
module Storage = Dtx_storage.Storage

let customers =
  {|<customers>
      <customer><id>c1</id><name>Ana Silva</name><city>Fortaleza</city></customer>
      <customer><id>c2</id><name>Bruno Costa</name><city>Recife</city></customer>
    </customers>|}

let orders = {|<orders></orders>|}

let inventory =
  {|<inventory>
      <sku><id>mouse</id><stock>5</stock><price>10.30</price></sku>
      <sku><id>keyboard</id><stock>3</stock><price>9.90</price></sku>
      <sku><id>cable</id><stock>0</stock><price>2.50</price></sku>
    </inventory>|}

let op s = match Op.parse s with Ok op -> op | Error e -> failwith e

let () =
  let sim = Sim.create () in
  let net = Net.of_config ~sim Net.Config.lan in
  let parse name text = Dtx_xml.Parser.parse ~name text in
  let store_dir = Filename.concat (Filename.get_temp_dir_name ()) "dtx-store-orders" in
  let cluster =
    Cluster.create ~sim ~net ~n_sites:3
      { (Cluster.default_config ()) with storage = `Filesystem store_dir }
      ~placements:
        [ { Allocation.doc = parse "customers" customers; sites = [ 0 ] };
          { Allocation.doc = parse "orders" orders; sites = [ 1; 2 ] };
          { Allocation.doc = parse "inventory" inventory; sites = [ 2 ] } ]
  in
  Cluster.shutdown_when_idle cluster;
  (* The paper leaves resubmission after a deadlock abort to the client
     (§2.4); this client retries once. *)
  let rec submit_with_retry name ~client ~coordinator ~ops ~retries =
    ignore
      (Cluster.submit cluster ~client ~coordinator ~ops
         ~on_finish:(fun txn ->
           Printf.printf "%-22s %-9s (%.2f ms)%s\n" name
             (Txn.status_to_string txn.Txn.status)
             (Txn.response_time txn)
             (if txn.Txn.status = Txn.Aborted && retries > 0 then
                " -> retrying"
              else "");
           if txn.Txn.status = Txn.Aborted && retries > 0 then
             submit_with_retry name ~client ~coordinator ~ops
               ~retries:(retries - 1)))
  in
  (* Ana orders a mouse: read the customer, check stock, append the order,
     decrement stock. *)
  submit_with_retry "ana-orders-mouse" ~client:1 ~coordinator:0 ~retries:1
    ~ops:
      [ ("customers", op {|QUERY /customers/customer[id = "c1"]|});
        ("inventory", op {|QUERY /inventory/sku[id = "mouse"]/stock|});
        ( "orders",
          op
            {|INSERT INTO /orders <order><id>o1</id><customer>c1</customer><sku>mouse</sku><qty>1</qty></order>|}
        );
        ("inventory", op {|CHANGE /inventory/sku[id = "mouse"]/stock TO "4"|}) ];
  (* Bruno orders a keyboard, concurrently. *)
  submit_with_retry "bruno-orders-keyboard" ~client:2 ~coordinator:1 ~retries:1
    ~ops:
      [ ("customers", op {|QUERY /customers/customer[id = "c2"]|});
        ( "orders",
          op
            {|INSERT INTO /orders <order><id>o2</id><customer>c2</customer><sku>keyboard</sku><qty>2</qty></order>|}
        );
        ("inventory", op {|CHANGE /inventory/sku[id = "keyboard"]/stock TO "1"|}) ];
  (* Back-office maintenance: retire the out-of-stock cable SKU into an
     archive section, renaming it on the way. *)
  submit_with_retry "retire-cable-sku" ~client:3 ~coordinator:2 ~retries:1
    ~ops:
      [ ("inventory", op {|INSERT INTO /inventory <archive/>|});
        ("inventory", op {|TRANSPOSE /inventory/sku[id = "cable"] INTO /inventory/archive|});
        ("inventory", op {|RENAME /inventory/archive/sku TO retired|}) ];
  Sim.run sim;

  let replica site doc =
    match Protocol.doc (Cluster.sites cluster).(site).Site.protocol doc with
    | Some d -> d
    | None -> assert false
  in
  Printf.printf "\norders at recife and natal agree: %b\n"
    (Dtx_xml.Doc.equal_structure (replica 1 "orders") (replica 2 "orders"));
  Printf.printf "orders placed: %d\n"
    (List.length (Eval.select (replica 1 "orders") (P.parse "/orders/order")));
  let stock sku =
    match Eval.select (replica 2 "inventory") (P.parse (Printf.sprintf {|/inventory/sku[id = "%s"]/stock|} sku)) with
    | [ n ] -> Node.text_content n
    | _ -> "?"
  in
  Printf.printf "stock: mouse=%s keyboard=%s; retired skus: %d\n" (stock "mouse")
    (stock "keyboard")
    (List.length (Eval.select (replica 2 "inventory") (P.parse "/inventory/archive/retired")));
  (* The DataManager persisted committed documents as real files. *)
  let st = (Cluster.sites cluster).(2).Site.storage in
  Printf.printf "\nfiles persisted by the natal DataManager (%s):\n  %s\n"
    store_dir
    (String.concat "\n  " (Storage.list st))
