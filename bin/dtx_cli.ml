(* The dtx command-line tool.

     dtx generate   --mb 4 -o auctions.xml        XMark-schema generator
     dtx query      -f doc.xml "/site/people/person[@id = \"p3\"]/name"
     dtx update     -f doc.xml -e 'CHANGE //price TO "9.99"' [-o out.xml]
     dtx dataguide  -f doc.xml                    print the strong DataGuide
     dtx locks      -f doc.xml -e 'REMOVE //item' [--protocol node2pl]
     dtx workload   --protocol commute --clients 50 --update-pct 20 ...
     dtx scale      --sites 1000 --clients 10000   extreme-scale single run
     dtx explore    --scenario ref [--naive] [--mutate skip-release] [--json]
     dtx experiment fig9 [--quick]                regenerate a paper figure

   Everything runs on the simulated cluster; see bench/main.exe for the
   complete evaluation harness. *)

open Cmdliner

module Doc = Dtx_xml.Doc
module Node = Dtx_xml.Node
module Xml_parser = Dtx_xml.Parser
module Printer = Dtx_xml.Printer
module Xp = Dtx_xpath.Parser
module Eval = Dtx_xpath.Eval
module Dataguide = Dtx_dataguide.Dataguide
module Op = Dtx_update.Op
module Exec = Dtx_update.Exec
module Protocol = Dtx_protocol.Protocol
module Mode = Dtx_locks.Mode
module Table = Dtx_locks.Table
module Generator = Dtx_xmark.Generator
module Workload = Dtx_workload.Workload
module Experiments = Dtx_workload.Experiments
module Allocation = Dtx_frag.Allocation
module Stats = Dtx_util.Stats
module Race = Dtx_race.Race
module Protocol_arg = Dtx_cli_args.Protocol_arg

(* Under DTX_RACE=1 every simulation subcommand ends with the detector's
   report on stderr — stdout stays byte-identical to an uninstrumented
   run — and exits 3 if any effect-discipline finding was recorded. *)
let race_gate () =
  if Race.enabled () then begin
    let clean = Race.report Format.err_formatter in
    Format.pp_print_flush Format.err_formatter ();
    if not clean then exit 3
  end

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let write_output out text =
  match out with
  | None -> print_string text
  | Some path ->
    let oc = open_out_bin path in
    output_string oc text;
    close_out oc

let load_doc path =
  Xml_parser.parse ~name:(Filename.remove_extension (Filename.basename path))
    (read_file path)

(* --- common args ---------------------------------------------------------- *)

let file_arg =
  Arg.(required & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE"
         ~doc:"XML document to operate on.")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write the result to $(docv) instead of stdout.")

(* Protocol selection is shared, registry-driven plumbing: see
   {!Protocol_arg}. [--protocol] picks one kind; the sweep subcommands
   (analyze, chaos) take [--protocols] config lists instead. *)
let protocol_arg = Protocol_arg.arg

(* --- generate -------------------------------------------------------------- *)

let generate_cmd =
  let mb =
    Arg.(value & opt float 1.0 & info [ "mb" ] ~docv:"MB"
           ~doc:"Database size in paper-MB (1 MB \xe2\x89\x88 250 nodes).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.") in
  let run mb seed out =
    let doc = Generator.generate (Generator.params_of_mb ~seed mb) in
    write_output out (Printer.to_string doc ^ "\n");
    Printf.eprintf "generated %d nodes (%d items, %d persons)\n" (Doc.size doc)
      (List.length (Generator.item_ids doc))
      (List.length (Generator.person_ids doc))
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate an XMark-schema auction document.")
    Term.(const run $ mb $ seed $ output_arg)

(* --- query ----------------------------------------------------------------- *)

let query_cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"XPATH"
           ~doc:"Path expression (the XDGL XPath subset).")
  in
  let run file path_text =
    let doc = load_doc file in
    match Xp.parse path_text with
    | exception Xp.Parse_error (msg, off) ->
      Printf.eprintf "parse error at %d: %s\n" off msg;
      exit 1
    | path ->
      let results = Eval.select doc path in
      Printf.printf "<!-- %d result(s) -->\n" (List.length results);
      List.iter (fun n -> print_endline (Printer.node_to_string n)) results
  in
  Cmd.v (Cmd.info "query" ~doc:"Evaluate an XPath expression over a document.")
    Term.(const run $ file_arg $ path)

(* --- update ---------------------------------------------------------------- *)

let op_arg =
  Arg.(required & opt (some string) None & info [ "e"; "op" ] ~docv:"OP"
         ~doc:"Operation in the textual update syntax, e.g. 'INSERT INTO \
               /site/people <person/>' or 'CHANGE //price TO \"9.99\"'.")

let update_cmd =
  let run file op_text out =
    let doc = load_doc file in
    match Op.parse op_text with
    | Error e ->
      Printf.eprintf "bad operation: %s\n" e;
      exit 1
    | Ok op -> (
      match Exec.apply doc op with
      | Error e ->
        Printf.eprintf "failed: %s\n" (Exec.error_to_string e);
        exit 1
      | Ok eff ->
        Printf.eprintf "%d node(s) affected, %d touched\n" eff.Exec.result_count
          eff.Exec.touched;
        write_output out (Printer.to_string doc ^ "\n"))
  in
  Cmd.v (Cmd.info "update" ~doc:"Apply one update operation to a document.")
    Term.(const run $ file_arg $ op_arg $ output_arg)

(* --- txn ------------------------------------------------------------------- *)

let txn_cmd =
  let script_arg =
    Arg.(required & opt (some string) None & info [ "e"; "script" ] ~docv:"SCRIPT"
           ~doc:"Transaction script: one operation per line ('#' comments).")
  in
  let run file script out =
    let doc = load_doc file in
    match Op.parse_script script with
    | Error e ->
      Printf.eprintf "bad script: %s\n" e;
      exit 1
    | Ok ops ->
      (* All-or-nothing: undo already-applied operations if a later one
         fails — the same rollback discipline DTX uses on abort. *)
      let rec apply_all done_ = function
        | [] ->
          Printf.eprintf "%d operation(s) applied\n" (List.length done_);
          write_output out (Printer.to_string doc ^ "\n")
        | op :: rest -> (
          match Exec.apply doc op with
          | Ok eff -> apply_all (eff :: done_) rest
          | Error e ->
            List.iter (fun eff -> ignore (Exec.undo doc eff.Exec.undo)) done_;
            Printf.eprintf "failed (%s): %s — rolled back\n" (Op.to_string op)
              (Exec.error_to_string e);
            exit 1)
      in
      apply_all [] ops
  in
  Cmd.v
    (Cmd.info "txn"
       ~doc:"Apply a multi-operation transaction to a document, atomically.")
    Term.(const run $ file_arg $ script_arg $ output_arg)

(* --- dataguide ------------------------------------------------------------- *)

let dataguide_cmd =
  let run file =
    let doc = load_doc file in
    let dg = Dataguide.build doc in
    Format.printf "%a" Dataguide.pp dg;
    Printf.printf "(%d DataGuide nodes for %d document nodes: %.1fx smaller)\n"
      (Dataguide.size dg) (Doc.size doc)
      (float_of_int (Doc.size doc) /. float_of_int (Dataguide.size dg))
  in
  Cmd.v
    (Cmd.info "dataguide"
       ~doc:"Print the strong DataGuide of a document (the XDGL lock space).")
    Term.(const run $ file_arg)

(* --- locks ----------------------------------------------------------------- *)

let locks_cmd =
  let run file op_text kind =
    let doc = load_doc file in
    let proto = Protocol.create kind in
    Protocol.add_doc proto doc;
    match Op.parse op_text with
    | Error e ->
      Printf.eprintf "bad operation: %s\n" e;
      exit 1
    | Ok op -> (
      match Protocol.lock_requests proto ~doc:doc.Doc.name op with
      | Error e ->
        Printf.eprintf "%s\n" e;
        exit 1
      | Ok (requests, processed) ->
        Printf.printf "%s would process %d lock request(s), retaining %d:\n"
          (Protocol.kind_to_string kind) processed (List.length requests);
        List.iter
          (fun ((r : Table.resource), mode) ->
            Printf.printf "  %-4s %s#%d\n" (Mode.to_string mode)
              (Table.resource_doc r) (Table.resource_node r))
          requests)
  in
  Cmd.v
    (Cmd.info "locks"
       ~doc:"Show the lock set a protocol computes for an operation.")
    Term.(const run $ file_arg $ op_arg $ protocol_arg)

(* --- workload ---------------------------------------------------------------*)

let policy_conv =
  Arg.conv
    ( (fun s ->
        match String.lowercase_ascii s with
        | "detection" -> Ok Dtx.Site.Detection
        | "wait-die" | "waitdie" -> Ok Dtx.Site.Wait_die
        | "wound-wait" | "woundwait" -> Ok Dtx.Site.Wound_wait
        | other -> Error (`Msg ("unknown policy " ^ other))),
      fun ppf p ->
        Format.pp_print_string ppf
          (match p with
           | Dtx.Site.Detection -> "detection"
           | Dtx.Site.Wait_die -> "wait-die"
           | Dtx.Site.Wound_wait -> "wound-wait") )

let workload_cmd =
  let clients = Arg.(value & opt int 50 & info [ "clients" ] ~doc:"Number of clients.") in
  let sites = Arg.(value & opt int 4 & info [ "sites" ] ~doc:"Number of sites.") in
  let txns = Arg.(value & opt int 5 & info [ "txns" ] ~doc:"Transactions per client.") in
  let ops = Arg.(value & opt int 5 & info [ "ops" ] ~doc:"Operations per transaction.") in
  let upd = Arg.(value & opt int 20 & info [ "update-pct" ] ~doc:"Percent update transactions.") in
  let mb = Arg.(value & opt float 40.0 & info [ "mb" ] ~doc:"Base size in paper-MB.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Workload seed.") in
  let total = Arg.(value & flag & info [ "total-replication" ] ~doc:"Replicate every document everywhere.") in
  let retries = Arg.(value & opt int 0 & info [ "retries" ] ~doc:"Client resubmissions after abort.") in
  let two_phase = Arg.(value & flag & info [ "two-phase" ] ~doc:"Commit with the 2PC extension.") in
  let wan = Arg.(value & flag & info [ "wan" ] ~doc:"WAN link profile instead of LAN.") in
  let policy =
    Arg.(value & opt policy_conv Dtx.Site.Detection
         & info [ "deadlock-policy" ] ~docv:"POLICY"
             ~doc:"detection, wait-die or wound-wait.")
  in
  let run kind clients sites txns ops upd mb seed total retries two_phase wan
      policy =
    let p =
      { Workload.default_params with
        protocol = kind; n_clients = clients; n_sites = sites;
        txns_per_client = txns; ops_per_txn = ops; update_txn_pct = upd;
        base_size_mb = mb; seed; retries;
        replication =
          (if total then Allocation.Total else Allocation.Partial { copies = 1 });
        two_phase_commit = two_phase;
        net_config = (if wan then Dtx_net.Net.Config.wan else Dtx_net.Net.Config.lan);
        deadlock_policy = policy }
    in
    let r = Workload.run p in
    Format.printf "%a@." Workload.pp_result r;
    race_gate ()
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Run one DTXTester workload on the simulated cluster.")
    Term.(const run $ protocol_arg $ clients $ sites $ txns $ ops $ upd $ mb
          $ seed $ total $ retries $ two_phase $ wan $ policy)

(* --- scale ------------------------------------------------------------------*)

let scale_cmd =
  let clients = Arg.(value & opt int 10_000 & info [ "clients" ] ~doc:"Number of clients.") in
  let sites = Arg.(value & opt int 1000 & info [ "sites" ] ~doc:"Number of sites.") in
  let txns = Arg.(value & opt int 1 & info [ "txns" ] ~doc:"Transactions per client.") in
  let ops = Arg.(value & opt int 3 & info [ "ops" ] ~doc:"Operations per transaction.") in
  let upd = Arg.(value & opt int 20 & info [ "update-pct" ] ~doc:"Percent update transactions.") in
  let mb = Arg.(value & opt float 10.0 & info [ "mb" ] ~doc:"Base size in paper-MB.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Workload seed.") in
  let no_timing =
    Arg.(value & flag
         & info [ "no-timing" ]
             ~doc:"Omit wall-clock timing lines, leaving only deterministic \
                   simulation output (for byte-for-byte run comparisons, \
                   e.g. the DTX_DOMAINS ablation gate).")
  in
  let run kind clients sites txns ops upd mb seed no_timing =
    let p =
      { Workload.default_params with
        protocol = kind; n_clients = clients; n_sites = sites;
        txns_per_client = txns; ops_per_txn = ops; update_txn_pct = upd;
        base_size_mb = mb; seed;
        (* At 1000 sites the paper's one-copy partial allocation is the only
           affordable choice; scale runs keep it. *)
        replication = Allocation.Partial { copies = 1 } }
    in
    let t0 = Unix.gettimeofday () in
    let database = Workload.build_database p in
    let t1 = Unix.gettimeofday () in
    let r = Workload.run ~database p in
    let t2 = Unix.gettimeofday () in
    let committed_per_s =
      if r.Workload.makespan_ms > 0.0 then
        float_of_int r.Workload.committed /. (r.Workload.makespan_ms /. 1000.0)
      else 0.0
    in
    Format.printf "%a@." Workload.pp_result r;
    Format.printf
      "scale: %d sites, %d clients, %d/%d txns committed@ \
       virtual throughput %.0f txn/s, mean response %.2f ms@."
      sites clients r.Workload.committed r.Workload.planned_txns
      committed_per_s r.Workload.response.Stats.mean;
    if not no_timing then
      Format.printf
        "wall clock: %.2f s database + %.2f s run (%.0f txn/s real)@."
        (t1 -. t0) (t2 -. t1)
        (if t2 -. t1 > 0.0 then float_of_int r.Workload.committed /. (t2 -. t1)
         else 0.0);
    race_gate ()
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:"Run one extreme-scale workload (defaults: 1000 sites, 10000 \
             clients) and report throughput, latency and wall-clock cost.")
    Term.(const run $ protocol_arg $ clients $ sites $ txns $ ops $ upd $ mb
          $ seed $ no_timing)

(* --- analyze ----------------------------------------------------------------*)

module Checker = Dtx_check.Checker
module Lattice = Dtx_check.Lattice

(* Seeded trace mutations for the checker's self-test: each hides one event
   from the analyzer (never from the actual run), so a healthy execution is
   presented with an unhealthy trace — which the analyzer must reject. *)
type mutation = Compat_flip | Skip_release | Commit_reorder

let mutation_conv =
  Arg.conv
    ( (fun s ->
        match String.lowercase_ascii s with
        | "compat-flip" -> Ok Compat_flip
        | "skip-release" -> Ok Skip_release
        | "commit-reorder" -> Ok Commit_reorder
        | other -> Error (`Msg ("unknown mutation " ^ other))),
      fun ppf m ->
        Format.pp_print_string ppf
          (match m with
           | Compat_flip -> "compat-flip"
           | Skip_release -> "skip-release"
           | Commit_reorder -> "commit-reorder") )

let mutation_tap = function
  | None | Some Compat_flip -> None
  | Some Skip_release ->
    (* Hide one end-of-transaction lock release: the lock-balance mirror
       must see the transaction finish still holding it. *)
    let armed = ref true in
    Some
      (fun ev ->
        match ev with
        | Checker.Lock { ev = Table.Released { kind = Table.End_of_txn; _ }; _ }
          when !armed ->
          armed := false;
          None
        | _ -> Some ev)
  | Some Commit_reorder ->
    (* Hide the delivery of one yes vote: the later Commit now precedes a
       complete prepare round, which the 2PC-order check must flag. *)
    let armed = ref true in
    Some
      (fun ev ->
        match ev with
        | Checker.Net
            { dir = Dtx_net.Net.Deliver;
              msg = Dtx_net.Msg.Vote { ok = true; _ };
              _
            }
          when !armed ->
          armed := false;
          None
        | _ -> Some ev)

let check_lattice ~flip =
  let result =
    if flip then
      (* One compatibility cell flipped (the paper's key conflict, Fig. 6):
         the derived masks and the matrix now disagree. *)
      let compat a b =
        match (a, b) with
        | (Mode.ST, Mode.IX) | (Mode.IX, Mode.ST) -> true
        | _ -> Mode.compatible a b
      in
      Lattice.check_with ~compat ~conflict_mask:Mode.conflict_mask
        ~intention_for:Mode.intention_for ()
    else Lattice.check ()
  in
  match result with
  | Ok () ->
    print_endline "mode-lattice: ok (64 pairs, masks, hierarchy)";
    true
  | Error msgs ->
    Printf.printf "mode-lattice: %d violation(s)\n" (List.length msgs);
    List.iter (fun m -> Printf.printf "  [mode-lattice] %s\n" m) msgs;
    false

let analyze_cmd =
  let seeds =
    Arg.(value & opt (list int) [ 7; 107 ] & info [ "seeds" ] ~docv:"SEEDS"
           ~doc:"Comma-separated workload seeds.")
  in
  let clients = Arg.(value & opt int 12 & info [ "clients" ] ~doc:"Number of clients.") in
  let sites = Arg.(value & opt int 4 & info [ "sites" ] ~doc:"Number of sites.") in
  let txns = Arg.(value & opt int 4 & info [ "txns" ] ~doc:"Transactions per client.") in
  let ops = Arg.(value & opt int 5 & info [ "ops" ] ~doc:"Operations per transaction.") in
  let upd = Arg.(value & opt int 30 & info [ "update-pct" ] ~doc:"Percent update transactions.") in
  let mb = Arg.(value & opt float 4.0 & info [ "mb" ] ~doc:"Base size in paper-MB.") in
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"Tiny single-seed configuration (the make-check gate).")
  in
  let mutate =
    Arg.(value & opt (some mutation_conv) None & info [ "mutate" ] ~docv:"MUT"
           ~doc:"Checker self-test: compat-flip, skip-release or \
                 commit-reorder. Runs a small configuration whose trace is \
                 mutated before analysis; the run must then FAIL.")
  in
  let ring =
    Arg.(value & opt int 256 & info [ "ring" ]
           ~doc:"Trace ring-buffer capacity (violation suffix length).")
  in
  let run seeds clients sites txns ops upd mb smoke mutate ring protocols =
    let clients, sites, txns, ops, mb, seeds =
      if smoke || mutate <> None then
        (6, 3, 3, 4, 2.0, [ List.nth_opt seeds 0 |> Option.value ~default:7 ])
      else (clients, sites, txns, ops, mb, seeds)
    in
    (match mutate with
     | Some Compat_flip ->
       (* Only the static lattice check is involved in this mutation. *)
       exit (if check_lattice ~flip:true then 0 else 1)
     | _ -> if not (check_lattice ~flip:false) then exit 1);
    let base =
      { Workload.default_params with
        n_clients = clients; n_sites = sites; txns_per_client = txns;
        ops_per_txn = ops; update_txn_pct = upd; base_size_mb = mb }
    in
    let configs =
      match mutate with
      | Some Skip_release -> [ (Protocol.xdgl, false) ]
      | Some Commit_reorder -> [ (Protocol.xdgl, true) ]
      | _ -> protocols
    in
    let failed = ref false in
    List.iter
      (fun seed ->
        List.iter
          (fun (proto, two_phase) ->
            if not !failed then begin
              let p =
                { base with seed; protocol = proto;
                  two_phase_commit = two_phase }
              in
              let label =
                Printf.sprintf "%s%s seed=%d" (Protocol.kind_to_string proto)
                  (if two_phase then "+2pc" else "")
                  seed
              in
              let checker = Checker.create ~ring () in
              let r =
                Workload.run
                  ~instrument:(fun cluster ->
                    Checker.attach ?mutate:(mutation_tap mutate) checker
                      cluster)
                  p
              in
              match Checker.finish checker with
              | [] ->
                Format.printf
                  "%-22s ok: %d committed, %d aborted, %d deadlock(s)@." label
                  r.Workload.committed r.Workload.aborted r.Workload.deadlocks
              | vs ->
                failed := true;
                Format.printf "%-22s %d violation(s):@." label (List.length vs);
                List.iter
                  (fun v -> Format.printf "%a@." Checker.pp_violation v)
                  vs
            end)
          configs)
      seeds;
    race_gate ();
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run seeded workloads under every protocol with the invariant \
             checker attached; exit non-zero on the first violation.")
    Term.(const run $ seeds $ clients $ sites $ txns $ ops $ upd $ mb $ smoke
          $ mutate $ ring $ Protocol_arg.configs_arg)

(* --- chaos ------------------------------------------------------------------*)

module Fault_plan = Dtx_fault.Fault_plan
module Injector = Dtx_fault.Injector

let chaos_cmd =
  let plans =
    Arg.(value & opt int 20 & info [ "plans" ] ~docv:"N"
           ~doc:"Seeded fault plans to run under every configuration.")
  in
  let first_seed =
    Arg.(value & opt int 1 & info [ "first-seed" ]
           ~doc:"Seed of the first plan; plan $(i,i) uses first-seed + i.")
  in
  let sites = Arg.(value & opt int 4 & info [ "sites" ] ~doc:"Number of sites.") in
  let clients = Arg.(value & opt int 6 & info [ "clients" ] ~doc:"Number of clients.") in
  let txns = Arg.(value & opt int 10 & info [ "txns" ] ~doc:"Transactions per client.") in
  let ops = Arg.(value & opt int 4 & info [ "ops" ] ~doc:"Operations per transaction.") in
  let upd = Arg.(value & opt int 40 & info [ "update-pct" ] ~doc:"Percent update transactions.") in
  let horizon =
    Arg.(value & opt float 160.0 & info [ "horizon" ] ~docv:"MS"
           ~doc:"Fault-plan horizon in virtual ms; keep it inside the \
                 fault-free makespan so the scheduled faults actually \
                 overlap the run. Generated faults all self-heal inside \
                 it: partitions close and crashed sites restart, so every \
                 run drains.")
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"Reduced matrix (the make-check gate): 3 plans, the XDGL \
                 and Commute flavours only.")
  in
  let show_plans =
    Arg.(value & flag & info [ "show-plans" ]
           ~doc:"Print each fault plan before running it.")
  in
  let ring =
    Arg.(value & opt int 256 & info [ "ring" ]
           ~doc:"Trace ring-buffer capacity (violation suffix length).")
  in
  let run plans first_seed sites clients txns ops upd horizon smoke show_plans
      ring protocols =
    let plans, configs =
      if smoke then
        ( 3,
          [ (Protocol.xdgl, false); (Protocol.xdgl, true);
            (Protocol.commute, false); (Protocol.commute, true) ] )
      else (plans, protocols)
    in
    let base =
      { Workload.default_params with
        n_clients = clients; n_sites = sites; txns_per_client = txns;
        ops_per_txn = ops; update_txn_pct = upd; base_size_mb = 2.0;
        (* The retransmission span (base 5 ms, 8 doublings ≈ 1.3 s) must
           outlast the longest partition the plan generator emits, so
           give-up fallbacks stay exceptional; the transaction timeout is
           the valve for work stranded behind a partition-stalled detector. *)
        retransmit_ms = Some 5.0;
        txn_timeout_ms = Some (4.0 *. horizon) }
    in
    let failed = ref 0 in
    let runs = ref 0 in
    let committed = ref 0 in
    let aborted = ref 0 in
    for i = 0 to plans - 1 do
      let plan_seed = first_seed + i in
      let plan =
        Fault_plan.random ~seed:plan_seed ~n_sites:sites ~horizon_ms:horizon
      in
      if show_plans then Format.printf "%a@." Fault_plan.pp plan;
      List.iter
        (fun (proto, two_phase) ->
          let p =
            { base with seed = 9000 + plan_seed; protocol = proto;
              two_phase_commit = two_phase }
          in
          let label =
            Printf.sprintf "plan %-3d %s%s" plan_seed
              (Protocol.kind_to_string proto)
              (if two_phase then "+2pc" else "")
          in
          (* One-phase commit is not crash-atomic — a site crash loses
             executed-but-uncommitted effects and there is no WAL redo to
             replay (the paper's §5 future-work gap; the 2PC extension is
             the fix). Crash events therefore run only under 2PC; the
             one-phase configs keep every message- and partition-level
             fault. *)
          let plan =
            if two_phase then plan
            else { plan with Fault_plan.crashes = [] }
          in
          let checker = Checker.create ~ring () in
          let r =
            Workload.run
              ~instrument:(fun cluster ->
                let inj = Injector.install cluster plan in
                Checker.set_link_oracle checker
                  (Some (Injector.link_oracle inj));
                Checker.attach checker cluster)
              p
          in
          incr runs;
          committed := !committed + r.Workload.committed;
          aborted := !aborted + r.Workload.aborted + r.Workload.failed;
          match Checker.finish checker with
          | [] ->
            Format.printf "%-28s ok: %d committed, %d aborted/failed@." label
              r.Workload.committed
              (r.Workload.aborted + r.Workload.failed)
          | vs ->
            incr failed;
            Format.printf "%-28s %d violation(s):@." label (List.length vs);
            List.iter
              (fun v -> Format.printf "%a@." Checker.pp_violation v)
              vs)
        configs
    done;
    Format.printf "chaos: %d run(s), %d committed, %d aborted/failed, %d \
                   failing run(s)@."
      !runs !committed !aborted !failed;
    race_gate ();
    if !failed > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run seeded workloads under scripted fault plans — message \
             drop/duplication/reordering, partitions, site crash and \
             WAL-replay restart — with the invariant checker attached; \
             exit non-zero if any run violates an invariant.")
    Term.(const run $ plans $ first_seed $ sites $ clients $ txns $ ops $ upd
          $ horizon $ smoke $ show_plans $ ring $ Protocol_arg.configs_arg)

(* --- explore ----------------------------------------------------------------*)

module Explore = Dtx_explore.Explore
module Commute = Dtx_explore.Commute

let explore_mutation_conv =
  Arg.conv
    ( (fun s ->
        match Explore.mutation_of_string s with
        | Some m -> Ok m
        | None -> Error (`Msg ("unknown mutation " ^ s))),
      fun ppf m ->
        Format.pp_print_string ppf (Explore.mutation_to_string m) )

let explore_cmd =
  let scenario =
    Arg.(value & opt string "ref" & info [ "scenario" ] ~docv:"NAME"
           ~doc:"Scenario to explore (or $(b,all)); see $(b,--list).")
  in
  let list_scenarios =
    Arg.(value & flag & info [ "list" ] ~doc:"List scenarios and exit.")
  in
  let two_phase =
    Arg.(value & flag & info [ "two-phase" ]
           ~doc:"Commit with the 2PC extension.")
  in
  let naive =
    Arg.(value & flag & info [ "naive" ]
           ~doc:"Disable the commutativity-driven sleep sets and explore \
                 every delivery order (the reduction baseline).")
  in
  let mutate =
    Arg.(value & opt (some explore_mutation_conv) None
           & info [ "mutate" ] ~docv:"MUT"
               ~doc:"Seed a protocol bug — compat-flip, skip-release or \
                     commit-reorder — that at least one explored schedule \
                     must expose; the command then exits non-zero.")
  in
  let random =
    Arg.(value & opt int 0 & info [ "random" ] ~docv:"N"
           ~doc:"Also run $(docv) seeded random (bounded-jitter) schedules \
                 and report how many seeds find a violation.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit one machine-readable JSON object per configuration.")
  in
  let gate_reduction =
    Arg.(value & opt float 0.0 & info [ "gate-reduction" ] ~docv:"X"
           ~doc:"Also run the naive baseline and fail unless \
                 naive/DPOR schedule count is at least $(docv).")
  in
  let max_schedules =
    Arg.(value & opt int Explore.default_config.Explore.max_schedules
           & info [ "max-schedules" ]
               ~doc:"Explored + pruned schedule budget.")
  in
  let ring =
    Arg.(value & opt int Explore.default_config.Explore.ring
           & info [ "ring" ]
               ~doc:"Per-replay trace ring-buffer capacity.")
  in
  let run scenario list_scenarios protocol two_phase naive mutate random json
      gate_reduction max_schedules ring =
    if list_scenarios then begin
      List.iter
        (fun s ->
          Printf.printf "%-10s %s\n" s.Explore.sc_name s.Explore.sc_about)
        Explore.scenarios;
      exit 0
    end;
    let scens =
      if scenario = "all" then Explore.scenarios
      else
        match Explore.find_scenario scenario with
        | Some s -> [ s ]
        | None ->
          Printf.eprintf "unknown scenario %s (try --list)\n" scenario;
          exit 2
    in
    let failed = ref false in
    List.iter
      (fun scen ->
        let cfg =
          { Explore.default_config with
            Explore.protocol; two_phase; naive; mutate; max_schedules; ring }
        in
        let o = Explore.explore ~config:cfg scen in
        let baseline =
          if gate_reduction > 0.0 && not naive then
            Some
              (Explore.explore
                 ~config:{ cfg with Explore.naive = true; mutate = None }
                 scen)
          else None
        in
        let reduction =
          match baseline with
          | Some b when o.Explore.o_explored > 0 ->
            Some (float_of_int b.Explore.o_explored
                  /. float_of_int o.Explore.o_explored)
          | _ -> None
        in
        let random_hits =
          if random > 0 then
            let seeds = List.init random (fun i -> i + 1) in
            let runs = Explore.random_runs scen cfg ~seeds in
            Some (List.length (List.filter (fun (_, vs) -> vs <> []) runs))
          else None
        in
        let label =
          Printf.sprintf "%s %s%s%s%s" scen.Explore.sc_name
            (Protocol.kind_to_string protocol)
            (if two_phase then "+2pc" else "")
            (if naive then " naive" else "")
            (match mutate with
             | None -> ""
             | Some m -> " mutate=" ^ Explore.mutation_to_string m)
        in
        if json then begin
          let fopt = function
            | Some r -> Printf.sprintf "%.2f" r
            | None -> "null"
          in
          let iopt = function
            | Some i -> string_of_int i
            | None -> "null"
          in
          Printf.printf
            "{\"scenario\":\"%s\",\"protocol\":\"%s\",\"two_phase\":%b,\
             \"naive\":%b,\"mutate\":%s,\"schedules_explored\":%d,\
             \"schedules_pruned\":%d,\"violations\":%d,\"max_depth\":%d,\
             \"truncated\":%b,\"unsound\":%d,\"reduction\":%s,\
             \"random_seeds\":%d,\"random_violating_seeds\":%s,\
             \"violation_detail\":[%s]}\n"
            scen.Explore.sc_name
            (Protocol.kind_to_string protocol)
            two_phase naive
            (match mutate with
             | None -> "null"
             | Some m ->
               Printf.sprintf "\"%s\"" (Explore.mutation_to_string m))
            o.Explore.o_explored o.Explore.o_pruned o.Explore.o_violations
            o.Explore.o_max_depth o.Explore.o_truncated
            (List.length o.Explore.o_unsound)
            (fopt reduction) random
            (iopt random_hits)
            (String.concat ","
               (List.concat_map
                  (fun vs ->
                    List.map Checker.violation_json
                      vs.Explore.vs_violations)
                  o.Explore.o_violating))
        end
        else begin
          Format.printf
            "%-28s %d schedule(s) explored, %d pruned, depth %d%s%s@." label
            o.Explore.o_explored o.Explore.o_pruned o.Explore.o_max_depth
            (match reduction with
             | Some r ->
               Printf.sprintf ", %.1fx reduction (naive %d)" r
                 (match baseline with
                  | Some b -> b.Explore.o_explored
                  | None -> 0)
             | None -> "")
            (if o.Explore.o_truncated then " [TRUNCATED]" else "");
          List.iter
            (fun m -> Format.printf "  [commute-unsound] %s@." m)
            o.Explore.o_unsound;
          (match random_hits with
           | Some hits ->
             Format.printf
               "  random baseline: %d/%d seed(s) found a violation@." hits
               random
           | None -> ());
          if o.Explore.o_violations > 0 then begin
            Format.printf "  %d violation(s) in %d schedule(s); first:@."
              o.Explore.o_violations
              (List.length o.Explore.o_violating);
            match o.Explore.o_violating with
            | [] -> ()
            | vs :: _ ->
              Format.printf "  schedule [%s]:@."
                (String.concat "; " (List.map string_of_int vs.Explore.vs_path));
              List.iter
                (fun v -> Format.printf "%a@." Checker.pp_violation v)
                vs.Explore.vs_violations
          end
        end;
        if o.Explore.o_violations > 0 || o.Explore.o_unsound <> [] then
          failed := true;
        (match reduction with
         | Some r when r < gate_reduction ->
           Format.printf "  reduction gate FAILED: %.2f < %.2f@." r
             gate_reduction;
           failed := true
         | _ -> ());
        if o.Explore.o_truncated && (gate_reduction > 0.0 || mutate = None)
        then begin
          Format.printf "  truncated run cannot certify the schedule space@.";
          failed := true
        end)
      scens;
    race_gate ();
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Model-check a pinned scenario over every inequivalent \
             message-delivery schedule (sleep-set DPOR seeded by the static \
             operation-commutativity analysis), with the invariant checker \
             as oracle; exit non-zero on any violation.")
    Term.(const run $ scenario $ list_scenarios $ protocol_arg $ two_phase
          $ naive $ mutate $ random $ json $ gate_reduction $ max_schedules
          $ ring)

(* --- race -------------------------------------------------------------------*)

(* Adversarial certification of the dynamic detector: a tiny simulation
   whose site-tagged events each perform three shared-state effects per
   tick — encoding a message on the process-wide scratch buffer, bumping a
   shared timeline, interning fresh symbols into one table. The clean run
   routes every effect through [Sim.defer], exactly the discipline the
   parallel tick requires, and must report zero findings; each --mutate
   variant performs one effect kind directly on the worker domain and must
   be flagged. Detection is group-based (logical concurrency), so a
   mutated run fails deterministically no matter how the pool schedules
   the groups. *)
let race_cmd =
  let mutate =
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("direct-send", `Direct_send);
                  ("undeferred-counter", `Undeferred_counter);
                  ("cross-domain-intern", `Cross_domain_intern) ]))
          None
      & info [ "mutate" ] ~docv:"KIND"
          ~doc:
            "Bypass Sim.defer for one effect kind: direct-send, \
             undeferred-counter or cross-domain-intern.")
  in
  let run mutate =
    (* Force parallel ticks and the detector on: the harness certifies the
       detector itself, whatever the caller's environment says. *)
    Unix.putenv "DTX_DOMAINS" "4";
    Race.set_enabled true;
    let sim = Dtx_sim.Sim.create () in
    let tl = Stats.Timeline.create ~bucket:1.0 in
    let syms = Dtx_util.Intern.create "race-harness" in
    let n_sites = 8 and ticks = 4 in
    for tick = 1 to ticks do
      for site = 0 to n_sites - 1 do
        ignore
          (Dtx_sim.Sim.schedule_at sim ~site ~time:(float_of_int tick)
             (fun () ->
               let time = Dtx_sim.Sim.now sim in
               let encode () =
                 ignore (Dtx_net.Msg.encode (Dtx_net.Msg.Commit { txn = site }))
               in
               let count () = Stats.Timeline.incr tl ~time in
               let intern () =
                 ignore
                   (Dtx_util.Intern.intern syms
                      (Printf.sprintf "s%d-t%d" site tick))
               in
               let route kind eff =
                 if mutate = Some kind then eff ()
                 else if not (Dtx_sim.Sim.defer eff) then eff ()
               in
               route `Direct_send encode;
               route `Undeferred_counter count;
               route `Cross_domain_intern intern))
      done
    done;
    Dtx_sim.Sim.run sim;
    Format.printf "race harness: %d sites x %d ticks, mutate=%s@." n_sites
      ticks
      (match mutate with
       | None -> "none"
       | Some `Direct_send -> "direct-send"
       | Some `Undeferred_counter -> "undeferred-counter"
       | Some `Cross_domain_intern -> "cross-domain-intern");
    let clean = Race.report Format.std_formatter in
    exit (if clean then 0 else 3)
  in
  Cmd.v
    (Cmd.info "race"
       ~doc:
         "Certify the DTX_RACE dynamic detector: a clean deferred-effect \
          run must report zero findings, and every --mutate variant (an \
          effect performed directly on a worker domain) must be flagged.")
    Term.(const run $ mutate)

(* --- lint -------------------------------------------------------------------*)

let lint_cmd =
  let root =
    Arg.(
      value & opt string "lib"
      & info [ "root" ] ~docv:"DIR"
          ~doc:"Library root to lint (every */*.ml under it).")
  in
  let allowlist =
    Arg.(
      value & opt string "lib/race/race_allowlist"
      & info [ "allowlist" ] ~docv:"FILE"
          ~doc:"Manifest of extra call-graph roots and justified statics.")
  in
  let mutate =
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("un-deferred-send", "un-deferred-send");
                  ("un-deferred-counter", "un-deferred-counter");
                  ("cross-domain-intern", "cross-domain-intern");
                  ("record-static", "record-static");
                  ("drop-allowlist", "drop-allowlist") ]))
          None
      & info [ "mutate" ] ~docv:"KIND"
          ~doc:
            "Inject a seeded violation the lint must flag: \
             un-deferred-send, un-deferred-counter, cross-domain-intern, \
             record-static (each adds an in-memory fixture whose \
             site-tagged closure mutates a static directly — the last via \
             a plain record literal with a mutable field) or \
             drop-allowlist (ignore the manifest's allow entries).")
  in
  let run root allowlist mutate =
    exit (Dtx_race_lint.Lint.run ~root ~allowlist ~mutate ())
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static effect-discipline lint: every module-level mutable static \
          reachable from the parallel tick must be defer-routed, \
          domain-local or justified in the race_allowlist.")
    Term.(const run $ root $ allowlist $ mutate)

(* --- cert -------------------------------------------------------------------*)

module Cert = Dtx_cert.Cert

let cert_mutation_conv =
  Arg.conv
    ( (fun s ->
        match Cert.mutation_of_string (String.lowercase_ascii s) with
        | Some m -> Ok m
        | None -> Error (`Msg ("unknown mutation " ^ s))),
      fun ppf m -> Format.pp_print_string ppf (Cert.mutation_to_string m) )

let cert_cmd =
  let mutate =
    Arg.(
      value
      & opt (some cert_mutation_conv) None
      & info [ "mutate" ] ~docv:"KIND"
          ~doc:
            "Certifier self-test — seed one fault it must reject: \
             flip-compat-bit (ST/IX made compatible in the collision \
             check), drop-handler (a reachable FSM pair silently dropped), \
             wrong-caps (a probe protocol whose capability flags lie) or \
             weaken-commute (gap-blind commutativity verdicts). The \
             command must then exit non-zero.")
  in
  let max_seconds =
    Arg.(
      value & opt float 60.0
      & info [ "max-seconds" ] ~docv:"S"
          ~doc:
            "Budget for the bounded-universe pass; exceeding it fails \
             certification (the cert-smoke gate).")
  in
  let run mutate max_seconds =
    exit (Cert.run ?mutate ~max_seconds ())
  in
  Cmd.v
    (Cmd.info "cert"
       ~doc:
         "Symbolically certify every registered protocol: lock-coverage \
          soundness over a bounded operation universe (with per-protocol \
          precision metrics), exhaustive FSM (state x message-kind) \
          coverage cross-checked against explore-style runs including \
          crash/restart recovery, WAL crash-point recovery mapping, and \
          registry-capability coherence. Prints a JSON report; exits \
          non-zero on any violation.")
    Term.(const run $ mutate $ max_seconds)

(* --- experiment -------------------------------------------------------------*)

let experiment_cmd =
  let figure =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE"
           ~doc:"One of: fig9, fig10, fig11a, fig11b, fig12, all.")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced scale.") in
  let run figure quick =
    let figs =
      match figure with
      | "fig9" -> Experiments.fig9 ~quick ()
      | "fig10" -> Experiments.fig10 ~quick ()
      | "fig11a" -> Experiments.fig11a ~quick ()
      | "fig11b" -> Experiments.fig11b ~quick ()
      | "fig12" -> Experiments.fig12 ~quick ()
      | "all" -> Experiments.all ~quick ()
      | other ->
        Printf.eprintf "unknown figure %s\n" other;
        exit 1
    in
    List.iter (fun f -> Format.printf "%a@.@." Experiments.pp_figure f) figs
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate one of the paper's figures.")
    Term.(const run $ figure $ quick)

let () =
  (* Long sweeps must not leak parked pool domains; every exit path —
     including the subcommands' [exit 1] failures — joins them. *)
  at_exit Dtx_sim.Sim.shutdown_pool;
  let doc = "DTX: distributed concurrency control for XML data (reproduction)" in
  let info = Cmd.info "dtx" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; query_cmd; update_cmd; txn_cmd; dataguide_cmd;
            locks_cmd; workload_cmd; scale_cmd; analyze_cmd; chaos_cmd;
            explore_cmd; race_cmd; lint_cmd; cert_cmd; experiment_cmd ]))
