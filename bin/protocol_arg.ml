(* Shared Cmdliner plumbing for protocol selection, driven entirely by the
   {!Dtx_protocol.Protocol} registry so a newly registered protocol shows up
   in every subcommand (workload/scale/explore pick one; analyze/chaos sweep
   a matrix) without touching this file. *)

open Cmdliner
module Protocol = Dtx_protocol.Protocol

let names () =
  Protocol.registered () |> List.map Protocol.kind_to_string
  |> List.map String.lowercase_ascii

let kind_conv =
  Arg.conv
    ( (fun s ->
        match Protocol.kind_of_string s with
        | Some k -> Ok k
        | None ->
          Error
            (`Msg
               (Printf.sprintf "unknown protocol %s (expected one of %s)" s
                  (String.concat ", " (names ())))) ),
      fun ppf k -> Format.pp_print_string ppf (Protocol.kind_to_string k) )

let arg =
  let doc =
    Printf.sprintf "Concurrency-control protocol: %s."
      (String.concat ", " (names ()))
  in
  Arg.(value & opt kind_conv Protocol.xdgl & info [ "protocol" ] ~docv:"PROTO" ~doc)

(* A config is a protocol plus the commit flavour. The sweep default is every
   registered protocol one-phase, plus the two 2PC flavours the test matrix
   has always certified (XDGL) or that need 2PC coverage most (Commute's
   validate-then-prepare ordering). *)

type config = Protocol.kind * bool

let default_configs () =
  List.map (fun k -> (k, false)) (Protocol.registered ())
  @ [ (Protocol.xdgl, true); (Protocol.commute, true) ]

let config_to_string (k, two_phase) =
  Protocol.kind_to_string k ^ if two_phase then "+2pc" else ""

let parse_config s =
  (* "+2pc" is an exact suffix check: protocol names themselves may contain
     '+' ("XDGL+VL"). *)
  let suffix = "+2pc" in
  let base, two_phase =
    if
      String.length s > String.length suffix
      && String.sub s (String.length s - String.length suffix)
           (String.length suffix)
         = suffix
    then (String.sub s 0 (String.length s - String.length suffix), true)
    else (s, false)
  in
  match Protocol.kind_of_string base with
  | None ->
    Error
      (`Msg
         (Printf.sprintf "unknown protocol %s (expected one of %s)" base
            (String.concat ", " (names ()))))
  | Some k ->
    if two_phase && not (Protocol.caps k).Protocol.two_pc_compatible then
      Error
        (`Msg
           (Printf.sprintf "%s does not support two-phase commit"
              (Protocol.kind_to_string k)))
    else Ok (k, two_phase)

let parse_configs s =
  if String.lowercase_ascii (String.trim s) = "all" then
    Ok (default_configs ())
  else
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.fold_left
         (fun acc spec ->
           match (acc, parse_config spec) with
           | Error _, _ -> acc
           | _, (Error _ as e) -> e
           | Ok cs, Ok c ->
             (* A duplicated config would silently double a sweep's runs
                (and its runtime); refuse rather than dedup, so a typo in a
                long --protocols list is visible. *)
             if List.mem c cs then
               Error
                 (`Msg
                    (Printf.sprintf "duplicate protocol config %s"
                       (config_to_string c)))
             else Ok (cs @ [ c ]))
         (Ok [])

let configs_conv =
  Arg.conv
    ( parse_configs,
      fun ppf cs ->
        Format.pp_print_string ppf
          (String.concat "," (List.map config_to_string cs)) )

let configs_arg =
  let doc =
    Printf.sprintf
      "Protocol configurations to sweep: comma-separated $(i,NAME)[+2pc] \
       specs (%s), or $(b,all) for every registered protocol plus the 2PC \
       flavours."
      (String.concat ", " (names ()))
  in
  Arg.(
    value
    & opt configs_conv (default_configs ())
    & info [ "protocols" ] ~docv:"CONFIGS" ~doc)
